//! Per-benchmark kernel specifications.
//!
//! The class-weight tables below encode each benchmark's producer-chain
//! depth distribution so that the cumulative coverage at Slice thresholds
//! {5, 10, 20, 30, 40, 50} lands near Table II of the paper, and the
//! state/sweep volumes are sized so per-benchmark checkpoint overheads
//! land near Fig. 6 (large-state `ft` suffers most; tiny-state `cg`
//! spends only ≈ 9 % of its time checkpointing). See the crate docs for
//! the provenance of each shape.

use crate::Benchmark;

/// What a store site's value computation looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// An arithmetic producer chain (sliceable if short enough).
    Arith,
    /// A pure copy of a loaded value (never sliceable — buffering the
    /// input would be equivalent to checkpointing the value).
    Copy,
}

/// One store-site class: a weight within the phase and a depth range for
/// the arithmetic chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassSpec {
    /// Fraction of the phase's store sites in this class.
    pub weight: f64,
    /// Kind of producer.
    pub kind: ClassKind,
    /// Arithmetic-chain depth range (inclusive); ignored for copies.
    pub depth: (u8, u8),
    /// Loads feeding the chain (become Slice inputs), 0–2.
    pub loads: u8,
}

impl ClassSpec {
    const fn arith(weight: f64, lo: u8, hi: u8, loads: u8) -> Self {
        ClassSpec {
            weight,
            kind: ClassKind::Arith,
            depth: (lo, hi),
            loads,
        }
    }

    const fn copy(weight: f64) -> Self {
        ClassSpec {
            weight,
            kind: ClassKind::Copy,
            depth: (0, 0),
            loads: 1,
        }
    }
}

/// Inter-core communication pattern of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comm {
    /// No communication.
    None,
    /// Ring exchange within disjoint groups of `size` threads, every
    /// `period`-th sweep (`period` must be a power of two).
    Groups {
        /// Group size (threads).
        size: u32,
        /// Sweep period (power of two).
        period: u32,
    },
    /// Ring exchange connecting *all* threads, every `period`-th sweep.
    AllToAll {
        /// Sweep period (power of two).
        period: u32,
    },
}

/// Periodic extra store volume. Staggered bursts rotate the heavy role
/// across threads (per-interval load imbalance — the source of the local
/// scheme's advantage in Fig. 13); unstaggered bursts hit all threads in
/// the same sweep (interval-size variation without imbalance, the source
/// of Fig. 10's temporal structure for the all-to-all benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavySpec {
    /// Burst period in sweeps (power of two).
    pub period: u32,
    /// Extra words written on a burst sweep.
    pub extra_addrs: u32,
    /// Whether the burst rotates across threads.
    pub staggered: bool,
}

/// One execution phase (per thread).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name (diagnostics).
    pub name: &'static str,
    /// Unique output words written per sweep (multiple of 64).
    pub addrs: u32,
    /// Sweeps over the output array (scaled by `WorkloadConfig::scale`).
    pub sweeps: u32,
    /// Store-site classes (weights sum to ≈ 1).
    pub classes: Vec<ClassSpec>,
    /// Communication pattern.
    pub comm: Comm,
    /// Periodic extra store volume, if any.
    pub heavy: Option<HeavySpec>,
}

/// A complete kernel: an input-initialisation phase is implicit.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Benchmark this models.
    pub bench: Benchmark,
    /// Read-only input array size per thread, in words (multiple of 64).
    pub input_words: u32,
    /// Compute phases, separated by barriers.
    pub phases: Vec<PhaseSpec>,
}

/// The specification for `bench`. Class weights follow the Table II /
/// Fig. 9 shapes; communication and imbalance follow Fig. 13 (see the
/// crate docs).
pub fn kernel_spec(bench: Benchmark) -> KernelSpec {
    use ClassSpec as C;
    let phases = match bench {
        // Block-tridiagonal solver: shallow RHS updates plus deep 5x5
        // block solves; all-to-all face exchanges every sweep.
        Benchmark::Bt => vec![
            PhaseSpec {
                name: "rhs",
                addrs: 512,
                sweeps: 12,
                classes: vec![
                    C::arith(0.20, 4, 8, 1),
                    C::arith(0.30, 6, 9, 1),
                    C::arith(0.10, 12, 18, 1),
                    C::arith(0.28, 22, 28, 2),
                    C::arith(0.04, 32, 38, 1),
                    C::arith(0.02, 42, 48, 1),
                    C::copy(0.06),
                ],
                comm: Comm::AllToAll { period: 1 },
                heavy: Some(HeavySpec {
                    period: 4,
                    extra_addrs: 512,
                    staggered: false,
                }),
            },
            PhaseSpec {
                name: "solve",
                addrs: 768,
                sweeps: 14,
                classes: vec![
                    C::arith(0.06, 4, 8, 1),
                    C::arith(0.12, 6, 9, 2),
                    C::arith(0.08, 13, 19, 1),
                    C::arith(0.56, 22, 29, 2),
                    C::arith(0.03, 33, 39, 1),
                    C::arith(0.02, 43, 49, 1),
                    C::arith(0.10, 55, 68, 1),
                    C::copy(0.03),
                ],
                comm: Comm::AllToAll { period: 1 },
                heavy: None,
            },
            PhaseSpec {
                name: "add",
                addrs: 512,
                sweeps: 12,
                classes: vec![
                    C::arith(0.55, 4, 9, 1),
                    C::arith(0.08, 12, 18, 1),
                    C::arith(0.27, 22, 28, 1),
                    C::arith(0.04, 32, 38, 1),
                    C::copy(0.06),
                ],
                comm: Comm::AllToAll { period: 1 },
                heavy: Some(HeavySpec {
                    period: 4,
                    extra_addrs: 512,
                    staggered: false,
                }),
            },
        ],
        // Conjugate gradient: a tiny result vector rewritten many times by
        // long sparse dot-product accumulations (tiny checkpoints — ≈ 9 %
        // of time in checkpointing — and deep slices); all-to-all
        // reductions every sweep.
        Benchmark::Cg => vec![
            PhaseSpec {
                name: "spmv",
                addrs: 64,
                sweeps: 160,
                classes: vec![
                    C::arith(0.02, 3, 5, 1),
                    C::arith(0.05, 6, 9, 2),
                    C::arith(0.60, 12, 19, 2),
                    C::arith(0.23, 22, 29, 2),
                    C::arith(0.05, 55, 70, 2),
                    C::copy(0.05),
                ],
                comm: Comm::AllToAll { period: 1 },
                heavy: Some(HeavySpec {
                    period: 16,
                    extra_addrs: 64,
                    staggered: false,
                }),
            },
            PhaseSpec {
                name: "axpy",
                addrs: 64,
                sweeps: 128,
                classes: vec![
                    C::arith(0.02, 3, 5, 1),
                    C::arith(0.05, 6, 9, 1),
                    C::arith(0.60, 12, 18, 2),
                    C::arith(0.22, 22, 28, 2),
                    C::arith(0.05, 55, 66, 1),
                    C::copy(0.06),
                ],
                comm: Comm::AllToAll { period: 1 },
                heavy: None,
            },
        ],
        // Data cube: shallow aggregation counters over large state; group
        // communication every other sweep, moderate rotating imbalance.
        Benchmark::Dc => vec![
            PhaseSpec {
                name: "aggregate",
                addrs: 512,
                sweeps: 20,
                classes: vec![
                    C::arith(0.48, 3, 6, 1),
                    C::arith(0.26, 6, 9, 1),
                    C::arith(0.09, 12, 18, 1),
                    C::arith(0.03, 22, 28, 1),
                    C::copy(0.14),
                ],
                comm: Comm::Groups { size: 4, period: 2 },
                heavy: Some(HeavySpec {
                    period: 8,
                    extra_addrs: 1024,
                    staggered: true,
                }),
            },
            PhaseSpec {
                name: "rollup",
                addrs: 512,
                sweeps: 16,
                classes: vec![
                    C::arith(0.45, 3, 6, 1),
                    C::arith(0.25, 6, 9, 2),
                    C::arith(0.11, 12, 19, 1),
                    C::arith(0.03, 22, 29, 1),
                    C::copy(0.16),
                ],
                comm: Comm::Groups { size: 4, period: 2 },
                heavy: Some(HeavySpec {
                    period: 8,
                    extra_addrs: 1024,
                    staggered: true,
                }),
            },
        ],
        // 3-D FFT: large state (largest checkpoints — ft suffers the most
        // from checkpointing), butterfly chains of 11–40 ops; transposes
        // communicate rarely in pairs, strong rotating imbalance.
        Benchmark::Ft => vec![
            PhaseSpec {
                name: "butterfly",
                addrs: 2048,
                sweeps: 6,
                classes: vec![
                    C::arith(0.08, 4, 7, 2),
                    C::arith(0.15, 6, 9, 2),
                    C::arith(0.48, 12, 19, 2),
                    C::arith(0.18, 22, 29, 2),
                    C::arith(0.108, 32, 39, 2),
                    C::arith(0.002, 43, 49, 1),
                    C::copy(0.002),
                ],
                comm: Comm::Groups { size: 2, period: 8 },
                heavy: Some(HeavySpec {
                    period: 2,
                    extra_addrs: 1024,
                    staggered: true,
                }),
            },
            PhaseSpec {
                name: "transpose",
                addrs: 2048,
                sweeps: 5,
                classes: vec![
                    C::arith(0.08, 4, 7, 1),
                    C::arith(0.15, 6, 9, 1),
                    C::arith(0.46, 12, 19, 2),
                    C::arith(0.17, 22, 29, 2),
                    C::arith(0.12, 32, 39, 1),
                    C::arith(0.01, 43, 49, 1),
                    C::copy(0.01),
                ],
                comm: Comm::Groups { size: 2, period: 8 },
                heavy: Some(HeavySpec {
                    period: 2,
                    extra_addrs: 1024,
                    staggered: true,
                }),
            },
        ],
        // Integer sort: tiny ranking computations (97 % coverable even at
        // threshold 5) followed by one large pure-permutation pass whose
        // interval dominates the Max checkpoint but contains nothing
        // recomputable (Fig. 9's is corner case).
        Benchmark::Is => vec![
            PhaseSpec {
                name: "rank",
                addrs: 768,
                sweeps: 14,
                classes: vec![
                    C::arith(0.80, 2, 4, 1),
                    C::arith(0.174, 2, 4, 0),
                    C::arith(0.021, 22, 28, 1),
                    C::copy(0.005),
                ],
                comm: Comm::Groups { size: 2, period: 4 },
                heavy: Some(HeavySpec {
                    period: 2,
                    extra_addrs: 768,
                    staggered: true,
                }),
            },
            PhaseSpec {
                name: "permute",
                addrs: 6144,
                sweeps: 1,
                classes: vec![C::arith(0.02, 2, 4, 1), C::copy(0.98)],
                comm: Comm::None,
                heavy: None,
            },
        ],
        // LU decomposition: shallow pivot updates plus a long tail of deep
        // and uncoverable elimination chains; all-to-all every other
        // sweep, mild imbalance.
        Benchmark::Lu => vec![
            PhaseSpec {
                name: "jacld",
                addrs: 640,
                sweeps: 16,
                classes: vec![
                    C::arith(0.16, 4, 8, 1),
                    C::arith(0.30, 6, 9, 2),
                    C::arith(0.04, 12, 18, 1),
                    C::arith(0.17, 22, 29, 2),
                    C::arith(0.10, 32, 39, 1),
                    C::arith(0.06, 42, 49, 1),
                    C::arith(0.10, 55, 70, 1),
                    C::copy(0.07),
                ],
                comm: Comm::AllToAll { period: 2 },
                heavy: Some(HeavySpec {
                    period: 4,
                    extra_addrs: 192,
                    staggered: true,
                }),
            },
            PhaseSpec {
                name: "blts",
                addrs: 640,
                sweeps: 16,
                classes: vec![
                    C::arith(0.12, 4, 8, 1),
                    C::arith(0.28, 6, 9, 1),
                    C::arith(0.04, 13, 19, 1),
                    C::arith(0.19, 22, 29, 2),
                    C::arith(0.11, 33, 39, 2),
                    C::arith(0.07, 43, 49, 1),
                    C::arith(0.13, 56, 70, 1),
                    C::copy(0.06),
                ],
                comm: Comm::AllToAll { period: 2 },
                heavy: Some(HeavySpec {
                    period: 4,
                    extra_addrs: 192,
                    staggered: true,
                }),
            },
        ],
        // Multigrid: V-cycle over levels of different sizes; restriction/
        // prolongation stencils are mostly 21–30 ops deep; neighbour
        // groups communicate rarely, moderate imbalance.
        Benchmark::Mg => vec![
            PhaseSpec {
                name: "fine",
                addrs: 1024,
                sweeps: 9,
                classes: vec![
                    C::arith(0.04, 4, 7, 1),
                    C::arith(0.08, 6, 9, 2),
                    C::arith(0.08, 12, 19, 2),
                    C::arith(0.68, 22, 29, 2),
                    C::arith(0.025, 32, 38, 1),
                    C::arith(0.045, 55, 66, 1),
                    C::copy(0.05),
                ],
                comm: Comm::Groups { size: 4, period: 4 },
                heavy: Some(HeavySpec {
                    period: 2,
                    extra_addrs: 512,
                    staggered: true,
                }),
            },
            PhaseSpec {
                name: "coarse",
                addrs: 256,
                sweeps: 14,
                classes: vec![
                    C::arith(0.04, 4, 7, 1),
                    C::arith(0.08, 6, 9, 1),
                    C::arith(0.09, 12, 18, 1),
                    C::arith(0.69, 22, 28, 2),
                    C::arith(0.02, 32, 38, 1),
                    C::arith(0.04, 55, 64, 1),
                    C::copy(0.04),
                ],
                comm: Comm::Groups { size: 4, period: 4 },
                heavy: None,
            },
            PhaseSpec {
                name: "interp",
                addrs: 1024,
                sweeps: 9,
                classes: vec![
                    C::arith(0.04, 4, 7, 1),
                    C::arith(0.08, 6, 9, 1),
                    C::arith(0.07, 12, 18, 2),
                    C::arith(0.67, 22, 29, 2),
                    C::arith(0.025, 32, 38, 1),
                    C::arith(0.05, 55, 66, 1),
                    C::copy(0.065),
                ],
                comm: Comm::Groups { size: 4, period: 4 },
                heavy: Some(HeavySpec {
                    period: 2,
                    extra_addrs: 512,
                    staggered: true,
                }),
            },
        ],
        // Scalar pentadiagonal solver: like bt but with a fatter 31–40
        // band; all-to-all every sweep.
        Benchmark::Sp => vec![
            PhaseSpec {
                name: "rhs",
                addrs: 640,
                sweeps: 16,
                classes: vec![
                    C::arith(0.14, 4, 8, 1),
                    C::arith(0.24, 6, 9, 1),
                    C::arith(0.10, 12, 18, 2),
                    C::arith(0.24, 22, 29, 2),
                    C::arith(0.21, 32, 39, 1),
                    C::arith(0.025, 42, 49, 1),
                    C::arith(0.02, 55, 64, 1),
                    C::copy(0.02),
                ],
                comm: Comm::AllToAll { period: 1 },
                heavy: Some(HeavySpec {
                    period: 4,
                    extra_addrs: 384,
                    staggered: false,
                }),
            },
            PhaseSpec {
                name: "solve",
                addrs: 768,
                sweeps: 16,
                classes: vec![
                    C::arith(0.12, 4, 8, 1),
                    C::arith(0.24, 6, 9, 2),
                    C::arith(0.11, 13, 19, 1),
                    C::arith(0.24, 22, 29, 2),
                    C::arith(0.23, 33, 39, 2),
                    C::arith(0.02, 43, 49, 1),
                    C::arith(0.02, 56, 66, 1),
                    C::copy(0.02),
                ],
                comm: Comm::AllToAll { period: 1 },
                heavy: Some(HeavySpec {
                    period: 4,
                    extra_addrs: 384,
                    staggered: false,
                }),
            },
        ],
    };
    KernelSpec {
        bench,
        input_words: 128,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        for b in Benchmark::ALL {
            let spec = kernel_spec(b);
            assert_eq!(spec.input_words % 64, 0);
            for p in &spec.phases {
                let sum: f64 = p.classes.iter().map(|c| c.weight).sum();
                assert!(
                    (sum - 1.0).abs() < 0.02,
                    "{b} phase {} weights sum to {sum}",
                    p.name
                );
                assert_eq!(
                    p.addrs % 64,
                    0,
                    "{b}/{}: addrs must be site-aligned",
                    p.name
                );
            }
        }
    }

    #[test]
    fn comm_periods_are_powers_of_two() {
        for b in Benchmark::ALL {
            for p in kernel_spec(b).phases {
                let period = match p.comm {
                    Comm::None => 1,
                    Comm::Groups { period, .. } | Comm::AllToAll { period } => period,
                };
                assert!(period.is_power_of_two(), "{b}/{}", p.name);
                if let Some(h) = p.heavy {
                    assert!(h.period.is_power_of_two());
                    assert_eq!(h.extra_addrs % 64, 0);
                }
            }
        }
    }

    #[test]
    fn fig13_roles_encoded() {
        // The all-to-all benchmarks (local == global in Fig. 13) must not
        // carry staggered imbalance; the local-friendly ones must.
        for b in [Benchmark::Bt, Benchmark::Cg, Benchmark::Sp] {
            for p in kernel_spec(b).phases {
                assert!(matches!(p.comm, Comm::AllToAll { period: 1 }), "{b}");
                if let Some(h) = p.heavy {
                    assert!(!h.staggered, "{b} must not be imbalanced");
                }
            }
        }
        for b in [Benchmark::Ft, Benchmark::Is, Benchmark::Mg, Benchmark::Dc] {
            let spec = kernel_spec(b);
            assert!(
                spec.phases
                    .iter()
                    .any(|p| p.heavy.map(|h| h.staggered).unwrap_or(false)),
                "{b} needs rotating imbalance for the local scheme"
            );
        }
    }

    #[test]
    fn paper_shapes_encoded() {
        // is: almost everything coverable at depth <= 5 in the rank phase.
        let is = kernel_spec(Benchmark::Is);
        let rank = &is.phases[0];
        let tiny: f64 = rank
            .classes
            .iter()
            .filter(|c| c.kind == ClassKind::Arith && c.depth.1 <= 5)
            .map(|c| c.weight)
            .sum();
        assert!(tiny > 0.9);
        // cg: almost nothing coverable at threshold 10.
        let cg = kernel_spec(Benchmark::Cg);
        let shallow: f64 = cg.phases[0]
            .classes
            .iter()
            .filter(|c| c.kind == ClassKind::Arith && c.depth.1 <= 10)
            .map(|c| c.weight)
            .sum();
        assert!(shallow < 0.15);
    }
}
