//! `experiment_cli` — run any ACR experiment from the command line.
//!
//! ```sh
//! cargo run --release -p acr-bench --bin experiment_cli -- \
//!     --bench is --threads 8 --errors 2 --checkpoints 50 --scheme local
//! ```
//!
//! Flags (all optional):
//!
//! ```text
//!   --bench <bt|cg|dc|ft|is|lu|mg|sp>   workload            [default: bt]
//!   --threads <n>                        cores/threads       [default: 8]
//!   --scale <f>                          ROI scale           [default: 1.0]
//!   --seed <n>                           generator seed
//!   --checkpoints <n>                    checkpoint count    [default: 25]
//!   --errors <n>                         injected errors     [default: 0]
//!   --threshold <n>                      slice threshold     [default: per-bench]
//!   --scheme <global|local>              coordination        [default: global]
//!   --latency <f>                        detection latency as period fraction
//!   --addrmap <n>                        AddrMap capacity per core
//!   --secondary <k>                      hierarchical level-2 every k-th ckpt
//!   --adaptive                           recomputation-aware placement
//!   --oracle                             verify recoveries against shadows
//!   --no-acr                             run the plain Ckpt baseline instead
//! ```

use std::process::ExitCode;

use acr::{placement, AddrMapConfig, Experiment, ExperimentSpec, RunResult};
use acr_ckpt::{Scheme, SecondaryStorage};
use acr_workloads::{generate, Benchmark, WorkloadConfig};

#[derive(Debug)]
struct Args {
    bench: Benchmark,
    threads: u32,
    scale: f64,
    seed: u64,
    checkpoints: u32,
    errors: u32,
    threshold: Option<usize>,
    scheme: Scheme,
    latency: f64,
    addrmap: Option<usize>,
    secondary: Option<u32>,
    adaptive: bool,
    oracle: bool,
    acr: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            bench: Benchmark::Bt,
            threads: 8,
            scale: 1.0,
            seed: WorkloadConfig::default().seed,
            checkpoints: 25,
            errors: 0,
            threshold: None,
            scheme: Scheme::GlobalCoordinated,
            latency: 0.5,
            addrmap: None,
            secondary: None,
            adaptive: false,
            oracle: false,
            acr: true,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--bench" => {
                let v = value("--bench")?;
                args.bench =
                    Benchmark::from_name(&v).ok_or_else(|| format!("unknown benchmark `{v}`"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--scale" => args.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--checkpoints" => {
                args.checkpoints = value("--checkpoints")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--errors" => args.errors = value("--errors")?.parse().map_err(|e| format!("{e}"))?,
            "--threshold" => {
                args.threshold = Some(value("--threshold")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--scheme" => {
                args.scheme = match value("--scheme")?.as_str() {
                    "global" => Scheme::GlobalCoordinated,
                    "local" => Scheme::LocalCoordinated,
                    other => return Err(format!("unknown scheme `{other}`")),
                };
            }
            "--latency" => {
                args.latency = value("--latency")?.parse().map_err(|e| format!("{e}"))?
            }
            "--addrmap" => {
                args.addrmap = Some(value("--addrmap")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--secondary" => {
                args.secondary = Some(value("--secondary")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--adaptive" => args.adaptive = true,
            "--oracle" => args.oracle = true,
            "--no-acr" => args.acr = false,
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn print_result(label: &str, r: &RunResult, base: Option<&RunResult>) {
    println!("--- {label} ---");
    println!("  cycles          {:>14}", r.cycles);
    println!("  time            {:>14.6} ms", r.seconds * 1e3);
    println!(
        "  energy          {:>14.6} mJ",
        r.energy.total_joules() * 1e3
    );
    println!("  EDP             {:>14.6e} J*s", r.edp);
    if let Some(b) = base {
        println!(
            "  time overhead   {:>13.2}% vs {}",
            r.time_overhead_pct(b),
            b.label
        );
        println!(
            "  energy overhead {:>13.2}% vs {}",
            r.energy_overhead_pct(b),
            b.label
        );
    }
    if let Some(rep) = &r.report {
        println!("  checkpoints     {:>14}", rep.checkpoints_taken);
        println!("  ckpt bytes      {:>14}", rep.total_checkpoint_bytes());
        if rep.total_baseline_bytes() > rep.total_checkpoint_bytes() {
            println!(
                "  size reduction  {:>13.2}% (max interval {:.2}%)",
                rep.overall_reduction_pct(),
                rep.max_interval_reduction_pct()
            );
        }
        if rep.errors_handled > 0 {
            let recomputed: u64 = rep.recoveries.iter().map(|x| x.recomputed_values).sum();
            let waste: u64 = rep.recoveries.iter().map(|x| x.waste_cycles).sum();
            println!("  errors handled  {:>14}", rep.errors_handled);
            println!("  recomputed      {:>14}", recomputed);
            println!("  wasted cycles   {:>14}", waste);
        }
        if rep.secondary_checkpoints > 0 {
            println!(
                "  level-2 ckpts   {:>14} ({} B)",
                rep.secondary_checkpoints, rep.secondary_bytes
            );
        }
    }
    if let Some(a) = &r.acr {
        println!(
            "  AddrMap         {:>14} writes, {} reads, peak {} live, {} capacity drops",
            a.addrmap_writes, a.addrmap_reads, a.addrmap_peak_live, a.capacity_rejections
        );
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let wl = WorkloadConfig {
        threads: args.threads,
        scale: args.scale,
        seed: args.seed,
    };
    let program = generate(args.bench, &wl);
    println!(
        "workload {} — {} threads, {} static instrs, {} B image",
        args.bench,
        program.num_threads(),
        program.static_len(),
        program.mem_bytes()
    );

    let mut spec = ExperimentSpec {
        detection_latency_frac: args.latency,
        ..ExperimentSpec::default()
    }
    .with_cores(args.threads)
    .with_checkpoints(args.checkpoints)
    .with_threshold(args.threshold.unwrap_or(args.bench.default_threshold()))
    .with_scheme(args.scheme)
    .with_oracle(args.oracle);
    if let Some(cap) = args.addrmap {
        spec.addrmap = AddrMapConfig {
            capacity_per_core: cap,
        };
    }
    if let Some(every) = args.secondary {
        spec.secondary = Some(SecondaryStorage {
            every,
            ..Default::default()
        });
    }

    let mut exp = Experiment::new(program, spec)?;
    let no = exp.run_no_ckpt()?;
    print_result("No_Ckpt", &no, None);

    if args.adaptive && args.acr {
        let outcome = placement::tune(&mut exp, 4)?;
        print_result("ReCkpt (uniform)", &outcome.uniform, Some(&no));
        print_result("ReCkpt (adaptive placement)", &outcome.adaptive, Some(&no));
        println!(
            "adaptive placement: {:+.2}% bytes, {:+.2}% time vs uniform",
            outcome.bytes_improvement_pct(),
            outcome.time_improvement_pct()
        );
        return Ok(());
    }

    let main = if args.acr {
        exp.run_reckpt(args.errors)?
    } else {
        exp.run_ckpt(args.errors)?
    };
    print_result(&main.label.clone(), &main, Some(&no));
    if args.acr {
        // Show the baseline for context.
        let base = exp.run_ckpt(args.errors)?;
        print_result(&base.label.clone(), &base, Some(&no));
        println!(
            "ACR vs baseline: {:.2}% time, {:.2}% energy, {:.2}% EDP reduction",
            100.0 * (base.cycles as f64 - main.cycles as f64) / base.cycles as f64,
            100.0 * (base.energy.total_joules() - main.energy.total_joules())
                / base.energy.total_joules(),
            main.edp_reduction_pct(&base),
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: experiment_cli [--bench <name>] [--threads n] [--scale f] [--seed n]"
            );
            eprintln!("               [--checkpoints n] [--errors n] [--threshold n]");
            eprintln!("               [--scheme global|local] [--latency f] [--addrmap n]");
            eprintln!("               [--secondary k] [--adaptive] [--oracle] [--no-acr]");
            if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
