//! Table I: the simulated architecture.
fn main() {
    print!("{}", acr_bench::figures::table1_report());
}
