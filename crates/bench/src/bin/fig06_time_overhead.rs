//! Fig. 6: execution time overhead of checkpointing and recovery.
use acr_bench::figures::{fig06_report, main_sweep};
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    let rows = main_sweep(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep");
    print!("{}", fig06_report(&rows));
}
