//! Fig. 10: impact of Slice length on checkpoint size over time (bt).
//!
//! Pass `csv` to emit the raw per-interval records (threshold 10) as CSV
//! for plotting instead of the formatted table.
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    if std::env::args().nth(1).as_deref() == Some("csv") {
        let mut exp = experiment_for(
            Benchmark::Bt,
            DEFAULT_THREADS,
            DEFAULT_SCALE,
            Scheme::GlobalCoordinated,
        )
        .expect("workload");
        let r = exp.run_reckpt(0).expect("reckpt");
        print!("{}", r.report.expect("report").intervals_csv());
        return;
    }
    print!(
        "{}",
        acr_bench::figures::fig10_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
}
