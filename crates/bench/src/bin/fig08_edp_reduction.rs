//! Fig. 8: EDP reduction under ReCkpt_NE and ReCkpt_E.
use acr_bench::figures::{fig08_report, main_sweep};
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    let rows = main_sweep(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep");
    print!("{}", fig08_report(&rows));
}
