//! Runs every table and figure of the paper in one go.
//!
//! `cargo run -p acr-bench --release --bin repro_all` — expect a few
//! minutes; pipe to a file to archive the results (EXPERIMENTS.md records
//! a reference run).
use std::time::Instant;

use acr_bench::figures;
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    let t0 = Instant::now();
    print!("{}", figures::fig01_report());
    println!();
    print!("{}", figures::table1_report());
    println!();
    let rows = figures::main_sweep(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep");
    for report in [
        figures::fig06_report(&rows),
        figures::fig07_report(&rows),
        figures::fig08_report(&rows),
        figures::fig09_report(&rows),
    ] {
        print!("{report}");
        println!();
    }
    print!(
        "{}",
        figures::table2_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::fig10_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::fig11_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::fig12_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::scalability_report(DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::fig13_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
