//! Runs every table and figure of the paper in one go.
//!
//! `cargo run -p acr-bench --release --bin repro_all` — expect a few
//! minutes; pipe to a file to archive the results (EXPERIMENTS.md records
//! a reference run).
//!
//! `--metrics-out FILE` additionally runs one sampled `ReCkpt_NE`
//! execution per benchmark and writes the interval metrics samples to
//! FILE as JSONL (tagged per workload); `--sample-interval N` sets the
//! sampling period in cycles (default 5000).
use std::process::ExitCode;
use std::time::Instant;

use acr_bench::figures;
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn parse_args() -> Result<(Option<String>, u64), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_out = None;
    let mut sample_interval = 5000u64;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--metrics-out" => metrics_out = Some(value.clone()),
            "--sample-interval" => {
                sample_interval = value
                    .parse()
                    .map_err(|e| format!("--sample-interval: {e}"))?;
                if sample_interval == 0 {
                    return Err("--sample-interval must be positive".into());
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok((metrics_out, sample_interval))
}

/// One sampled ACR run per benchmark, serialised as JSONL metric samples.
fn sampled_metrics(sample_interval: u64) -> Result<String, String> {
    let mut out = String::new();
    for bench in [Benchmark::Is, Benchmark::Cg, Benchmark::Mg] {
        let mut exp = experiment_for(
            bench,
            DEFAULT_THREADS,
            DEFAULT_SCALE,
            Scheme::GlobalCoordinated,
        )
        .map_err(|e| format!("{}: {e}", bench.name()))?;
        let mut spec = exp.spec().clone();
        spec.sample_interval = sample_interval;
        exp.set_spec(spec);
        let run = exp
            .run_reckpt(0)
            .map_err(|e| format!("{}: {e}", bench.name()))?;
        let report = run.report.as_ref().expect("engine runs carry a report");
        out.push_str(
            &report
                .series
                .to_jsonl(&[("workload", bench.name()), ("run", "reckpt_ne")]),
        );
    }
    Ok(out)
}

fn main() -> ExitCode {
    let (metrics_out, sample_interval) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let t0 = Instant::now();
    print!("{}", figures::fig01_report());
    println!();
    print!("{}", figures::table1_report());
    println!();
    let rows = figures::main_sweep(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep");
    for report in [
        figures::fig06_report(&rows),
        figures::fig07_report(&rows),
        figures::fig08_report(&rows),
        figures::fig09_report(&rows),
    ] {
        print!("{report}");
        println!();
    }
    print!(
        "{}",
        figures::table2_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::fig10_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::fig11_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::fig12_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::scalability_report(DEFAULT_SCALE).expect("sweep")
    );
    println!();
    print!(
        "{}",
        figures::fig13_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
    println!();
    if let Some(path) = metrics_out {
        match sampled_metrics(sample_interval) {
            Ok(jsonl) => {
                if let Err(e) = std::fs::write(&path, jsonl) {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
                println!("metrics samples (every {sample_interval} cycles) -> {path}");
                println!();
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    println!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
