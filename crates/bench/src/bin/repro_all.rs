//! Runs every table and figure of the paper in one go.
//!
//! `cargo run -p acr-bench --release --bin repro_all` — expect a few
//! minutes; pipe to a file to archive the results (EXPERIMENTS.md records
//! a reference run).
//!
//! `--jobs N` shards the independent figure/table computations across N
//! worker threads (0 = auto: `ACR_JOBS` env, else available parallelism).
//! Reports are collected per task and printed in the fixed sequential
//! order, so the output is byte-identical for every jobs value (modulo
//! the final wall-time line).
//!
//! `--metrics-out FILE` additionally runs one sampled `ReCkpt_NE`
//! execution per benchmark and writes the interval metrics samples to
//! FILE as JSONL (tagged per workload); `--sample-interval N` sets the
//! sampling period in cycles (default 5000).
//!
//! `--manifest-out FILE` writes a run manifest: one content hash per
//! figure/table task (over its report text) plus per-task host timings
//! under `host.phase.<task>.ns` — comparable with `acr_cli diff`.
use std::process::ExitCode;

use acr_bench::figures;
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::{ParallelRunner, Scheme};
use acr_trace::{Fnv1a, HostPerf, Manifest, Stopwatch};
use acr_workloads::Benchmark;

struct Args {
    metrics_out: Option<String>,
    sample_interval: u64,
    jobs: usize,
    manifest_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = Args {
        metrics_out: None,
        sample_interval: 5000,
        jobs: 0,
        manifest_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--metrics-out" => out.metrics_out = Some(value.clone()),
            "--sample-interval" => {
                out.sample_interval = value
                    .parse()
                    .map_err(|e| format!("--sample-interval: {e}"))?;
                if out.sample_interval == 0 {
                    return Err("--sample-interval must be positive".into());
                }
            }
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--manifest-out" => out.manifest_out = Some(value.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok(out)
}

/// One sampled ACR run per benchmark, serialised as JSONL metric samples.
fn sampled_metrics(sample_interval: u64) -> Result<String, String> {
    let mut out = String::new();
    for bench in [Benchmark::Is, Benchmark::Cg, Benchmark::Mg] {
        let mut exp = experiment_for(
            bench,
            DEFAULT_THREADS,
            DEFAULT_SCALE,
            Scheme::GlobalCoordinated,
        )
        .map_err(|e| format!("{}: {e}", bench.name()))?;
        let mut spec = exp.spec().clone();
        spec.sample_interval = sample_interval;
        exp.set_spec(spec);
        let run = exp
            .run_reckpt(0)
            .map_err(|e| format!("{}: {e}", bench.name()))?;
        let report = run.report.as_ref().expect("engine runs carry a report");
        out.push_str(
            &report
                .series
                .to_jsonl(&[("workload", bench.name()), ("run", "reckpt_ne")]),
        );
    }
    Ok(out)
}

/// One independent unit of figure/table work: returns its reports in
/// print order. Figures that share an expensive sweep (Fig. 6–9 all read
/// `main_sweep`) are bundled into one task so the sweep still runs once.
/// The name labels the task's manifest hash and host phase timer.
type FigureTask = (
    &'static str,
    Box<dyn Fn() -> Result<Vec<String>, String> + Sync>,
);

fn figure_tasks() -> Vec<FigureTask> {
    vec![
        ("fig01", Box::new(|| Ok(vec![figures::fig01_report()]))),
        ("table1", Box::new(|| Ok(vec![figures::table1_report()]))),
        (
            "figs06-09",
            Box::new(|| {
                let rows = figures::main_sweep(DEFAULT_THREADS, DEFAULT_SCALE)
                    .map_err(|e| format!("sweep: {e}"))?;
                Ok(vec![
                    figures::fig06_report(&rows),
                    figures::fig07_report(&rows),
                    figures::fig08_report(&rows),
                    figures::fig09_report(&rows),
                ])
            }),
        ),
        (
            "table2",
            Box::new(|| {
                figures::table2_report(DEFAULT_THREADS, DEFAULT_SCALE)
                    .map(|r| vec![r])
                    .map_err(|e| format!("table2: {e}"))
            }),
        ),
        (
            "fig10",
            Box::new(|| {
                figures::fig10_report(DEFAULT_THREADS, DEFAULT_SCALE)
                    .map(|r| vec![r])
                    .map_err(|e| format!("fig10: {e}"))
            }),
        ),
        (
            "fig11",
            Box::new(|| {
                figures::fig11_report(DEFAULT_THREADS, DEFAULT_SCALE)
                    .map(|r| vec![r])
                    .map_err(|e| format!("fig11: {e}"))
            }),
        ),
        (
            "fig12",
            Box::new(|| {
                figures::fig12_report(DEFAULT_THREADS, DEFAULT_SCALE)
                    .map(|r| vec![r])
                    .map_err(|e| format!("fig12: {e}"))
            }),
        ),
        (
            "scalability",
            Box::new(|| {
                figures::scalability_report(DEFAULT_SCALE)
                    .map(|r| vec![r])
                    .map_err(|e| format!("scalability: {e}"))
            }),
        ),
        (
            "fig13",
            Box::new(|| {
                figures::fig13_report(DEFAULT_THREADS, DEFAULT_SCALE)
                    .map(|r| vec![r])
                    .map_err(|e| format!("fig13: {e}"))
            }),
        ),
    ]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut host = HostPerf::start();
    let tasks = figure_tasks();
    // Each worker times its own task; the per-task wall times come back
    // with the reports, so host.phase.* is accurate under any --jobs.
    let chunks = host.time("figures", || {
        ParallelRunner::new(args.jobs).run_ordered(tasks.len(), |i| {
            let sw = Stopwatch::start();
            let out = tasks[i].1();
            (out, sw.elapsed_ns())
        })
    });
    let mut sim_hashes: Vec<(String, u64)> = Vec::new();
    let mut digest = Fnv1a::new();
    for ((name, _), (chunk, task_ns)) in tasks.iter().zip(chunks) {
        let reports = match chunk {
            Ok(reports) => reports,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        };
        host.add_phase_ns(name, task_ns);
        let mut h = Fnv1a::new();
        for report in reports {
            h.write(report.as_bytes());
            digest.write(report.as_bytes());
            print!("{report}");
            println!();
        }
        sim_hashes.push(((*name).to_owned(), h.finish()));
    }
    if let Some(path) = args.metrics_out {
        let jsonl = match host.time("metrics", || sampled_metrics(args.sample_interval)) {
            Ok(jsonl) => jsonl,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, jsonl) {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "metrics samples (every {} cycles) -> {path}",
            args.sample_interval
        );
        println!();
    }
    if let Some(path) = &args.manifest_out {
        sim_hashes.push(("combined".to_owned(), {
            let mut h = Fnv1a::new();
            for (_, v) in &sim_hashes {
                h.write_u64(*v);
            }
            h.finish()
        }));
        host.record_jobs(
            args.jobs as u64,
            ParallelRunner::new(args.jobs).jobs() as u64,
            &[],
        );
        let m = Manifest {
            command: "repro_all".to_owned(),
            config: vec![
                ("threads".to_owned(), DEFAULT_THREADS.to_string()),
                ("scale".to_owned(), DEFAULT_SCALE.to_string()),
                (
                    "sample_interval".to_owned(),
                    args.sample_interval.to_string(),
                ),
            ],
            sim_hashes,
            metrics_digest: digest.finish(),
            host: host.finish(),
            bench: None,
        };
        if let Err(e) = std::fs::write(path, m.to_json()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("manifest -> {path}");
        println!();
    }
    println!("total wall time: {:.1}s", host.wall_ns() as f64 / 1e9);
    ExitCode::SUCCESS
}
