//! Internal: per-interval record volumes and reductions (not a figure).
use acr_bench::experiment_for;
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dc".into());
    let b = Benchmark::from_name(&name).expect("benchmark name");
    let mut exp = experiment_for(b, 8, 1.0, Scheme::GlobalCoordinated).unwrap();
    let re = exp.run_reckpt(0).unwrap();
    let rep = re.report.as_ref().unwrap();
    for i in &rep.intervals {
        println!(
            "epoch {:>3} base {:>9} red% {:6.2} recs {:>7} omit {:>7}",
            i.epoch,
            i.baseline_bytes,
            i.reduction_pct(),
            i.records,
            i.omitted
        );
    }
    println!(
        "overall {:.2} max {:.2}",
        rep.overall_reduction_pct(),
        rep.max_interval_reduction_pct()
    );
}
