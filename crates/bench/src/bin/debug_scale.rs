//! Internal: thread scaling preview.
use acr_bench::experiment_for;
use acr_ckpt::Scheme;
use acr_trace::Stopwatch;
use acr_workloads::Benchmark;

fn main() {
    for threads in [8u32, 16, 32] {
        let t0 = Stopwatch::start();
        let mut ohs = vec![];
        for b in [Benchmark::Is, Benchmark::Mg, Benchmark::Ft] {
            let mut e = experiment_for(b, threads, 1.0, Scheme::GlobalCoordinated).unwrap();
            let no = e.run_no_ckpt().unwrap();
            let c = e.run_ckpt(0).unwrap();
            let r = e.run_reckpt(0).unwrap();
            ohs.push(format!(
                "{}: oh {:.1}% red {:.1}%",
                b.name(),
                c.time_overhead_pct(&no),
                100.0 * (c.cycles - r.cycles) as f64 / c.cycles as f64
            ));
        }
        println!(
            "threads {}: {} ({:.1}s)",
            threads,
            ohs.join(" | "),
            t0.elapsed_secs()
        );
    }
}
