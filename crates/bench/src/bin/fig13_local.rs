//! Fig. 13: coordinated local checkpointing vs global counterparts.
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    print!(
        "{}",
        acr_bench::figures::fig13_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
}
