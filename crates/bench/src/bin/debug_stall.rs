//! Internal: stall composition per benchmark (not a paper figure).
use acr_bench::experiment_for;
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    for b in [Benchmark::Cg, Benchmark::Is, Benchmark::Bt] {
        let mut exp = experiment_for(b, 8, 1.0, Scheme::GlobalCoordinated).unwrap();
        let no = exp.run_no_ckpt().unwrap();
        let ckpt = exp.run_ckpt(0).unwrap();
        let rep = ckpt.report.as_ref().unwrap();
        let stall: u64 = rep.checkpoint_stall_cycles;
        let lines: u64 = rep.intervals.iter().map(|i| i.lines_flushed).sum();
        let recs: u64 = rep.intervals.iter().map(|i| i.records).sum();
        let skew = ckpt.cycles as i64 - no.cycles as i64 - stall as i64;
        println!(
            "{}: no={} ckpt={} stall_total={} ({}/ckpt) lines={} recs={} skew_resid={}",
            b.name(),
            no.cycles,
            ckpt.cycles,
            stall,
            stall / rep.checkpoints_taken.max(1),
            lines,
            recs,
            skew
        );
        for i in rep.intervals.iter().take(4) {
            println!(
                "   epoch {} recs {} lines {} stall {}",
                i.epoch, i.records, i.lines_flushed, i.stall_cycles
            );
        }
    }
}
