//! Fig. 9: percentage reduction of checkpoint size under ReCkpt_NE.
use acr_bench::figures::{fig09_report, main_sweep};
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    let rows = main_sweep(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep");
    print!("{}", fig09_report(&rows));
}
