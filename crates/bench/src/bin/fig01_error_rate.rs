//! Fig. 1: relative component error rate (8 %/bit/generation).
fn main() {
    print!("{}", acr_bench::figures::fig01_report());
}
