//! Extension (the paper's future work, Sections V-D1/V-D3):
//! recomputation-aware checkpoint placement. Profiles each benchmark's
//! per-interval recomputability, places checkpoints by DP to seal
//! high-recomputability stretches, and compares against the uniform
//! schedule the paper uses throughout.
use acr::placement;
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    println!("== Extension: recomputation-aware checkpoint placement ==");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10}",
        "bench", "uniform_B", "adaptive_B", "bytesImp%", "timeImp%"
    );
    for b in Benchmark::ALL {
        let mut exp = experiment_for(b, DEFAULT_THREADS, DEFAULT_SCALE, Scheme::GlobalCoordinated)
            .expect("workload");
        let outcome = placement::tune(&mut exp, 4).expect("tuning runs");
        println!(
            "{:>5} {:>12} {:>12} {:>10.2} {:>10.2}",
            b.name(),
            outcome.uniform.checkpoint_bytes(),
            outcome.adaptive.checkpoint_bytes(),
            outcome.bytes_improvement_pct(),
            outcome.time_improvement_pct(),
        );
    }
    println!("positive = adaptive better. The paper predicts checkpoint timing that");
    println!("coincides with recomputation opportunities beats blind uniform placement.");
}
