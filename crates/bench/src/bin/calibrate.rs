//! Internal calibration harness: per-benchmark overheads and reductions
//! at the paper's default configuration, with wall-clock timing. Not a
//! paper figure — used to tune workload volumes (see DESIGN.md).

use acr_bench::{experiment_for, pct, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_trace::Stopwatch;
use acr_workloads::Benchmark;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!(
        "{:>4} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "name",
        "no_cycles",
        "ckptOH%",
        "reOH%",
        "tRed%",
        "eRed%",
        "szOv%",
        "szMax%",
        "edpRed%",
        "wall_s"
    );
    for b in Benchmark::ALL {
        let t0 = Stopwatch::start();
        let mut exp = experiment_for(b, DEFAULT_THREADS, scale, Scheme::GlobalCoordinated)
            .expect("valid workload");
        let no = exp.run_no_ckpt().expect("run");
        let ckpt = exp.run_ckpt(0).expect("run");
        let re = exp.run_reckpt(0).expect("run");
        let ckpt_oh = ckpt.time_overhead_pct(&no);
        let re_oh = re.time_overhead_pct(&no);
        let t_red = 100.0 * (ckpt.cycles as f64 - re.cycles as f64) / ckpt.cycles as f64;
        let e_red = 100.0 * (ckpt.energy.total_joules() - re.energy.total_joules())
            / ckpt.energy.total_joules();
        let rep = re.report.as_ref().expect("report");
        let edp_red = re.edp_reduction_pct(&ckpt);
        println!(
            "{:>4} {:>12} {} {} {} {} {} {} {} {:7.1}",
            b.name(),
            no.cycles,
            pct(ckpt_oh),
            pct(re_oh),
            pct(t_red),
            pct(e_red),
            pct(rep.overall_reduction_pct()),
            pct(rep.max_interval_reduction_pct()),
            pct(edp_red),
            t0.elapsed_secs(),
        );
    }
}
