//! Fig. 11: impact of the error rate (1..5 errors per execution).
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    print!(
        "{}",
        acr_bench::figures::fig11_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
}
