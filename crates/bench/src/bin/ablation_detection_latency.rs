//! Ablation: error detection latency (Fig. 2 semantics). Longer latency
//! forces rollback past potentially corrupted checkpoints, increasing
//! waste; the paper assumes latency <= checkpoint period throughout.
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    println!("== Ablation: detection latency (fraction of checkpoint period) ==");
    println!(
        "{:>5} {:>8} {:>12} {:>12} {:>12}",
        "bench", "latency", "ReCkpt_E cyc", "waste_cyc", "recomputed"
    );
    for b in [Benchmark::Lu, Benchmark::Dc] {
        for frac in [0.1f64, 0.25, 0.5, 0.75, 1.0] {
            let mut exp =
                experiment_for(b, DEFAULT_THREADS, DEFAULT_SCALE, Scheme::GlobalCoordinated)
                    .expect("workload");
            let mut spec = exp.spec().clone();
            spec.detection_latency_frac = frac;
            exp.set_spec(spec);
            let r = exp.run_reckpt(2).expect("reckpt");
            let rep = r.report.as_ref().expect("report");
            let waste: u64 = rep.recoveries.iter().map(|x| x.waste_cycles).sum();
            let recomputed: u64 = rep.recoveries.iter().map(|x| x.recomputed_values).sum();
            println!(
                "{:>5} {:>8.2} {:>12} {:>12} {:>12}",
                b.name(),
                frac,
                r.cycles,
                waste,
                recomputed,
            );
        }
    }
    println!("expectation: waste grows with latency (more work discarded per recovery).");
}
