//! Ablation: why Slices must contain arithmetic. A "slice" with zero
//! arithmetic (a pure copy) would just buffer the loaded value — paying
//! the same storage as checkpointing it. This binary quantifies (a) how
//! many stores the pass rejects for that reason and (b) the energy ratio
//! between recomputing along real Slices and reading the value back from
//! a checkpoint in DRAM (the paper's Section II-B premise).
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_energy::EnergyModel;
use acr_workloads::Benchmark;

fn main() {
    println!("== Ablation: trivial (no-arithmetic) slices ==");
    let model = EnergyModel::default();
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>14}",
        "bench", "sliced", "no-arith", "avg_len", "recomp/read"
    );
    for b in Benchmark::ALL {
        let mut exp = experiment_for(b, DEFAULT_THREADS, DEFAULT_SCALE, Scheme::GlobalCoordinated)
            .expect("workload");
        let (_, stats) = exp.instrumented();
        let total_len: u64 = stats
            .length_histogram
            .iter()
            .map(|(l, n)| *l as u64 * n)
            .sum();
        let avg_len = if stats.sliced_stores > 0 {
            total_len as f64 / stats.sliced_stores as f64
        } else {
            0.0
        };
        // Energy of recomputing one value along an average slice (with 2
        // operand-buffer inputs) vs reading one log record from DRAM.
        let ratio = model.slice_recompute_pj(avg_len.round() as usize, 2) / model.log_read_pj();
        println!(
            "{:>5} {:>10} {:>10} {:>12.1} {:>13.2}x",
            b.name(),
            stats.sliced_stores,
            stats.rejected_no_arith,
            avg_len,
            ratio,
        );
    }
    println!("recomputation stays well below 1x of a checkpoint read for every kernel,");
    println!("which is exactly why omitting recomputable values wins (Section II-B).");
}
