//! Ablation: register-file vs scratchpad recomputation (Section II-B).
//! With the register file, recomputation must finish before the
//! checkpointed registers are restored (serialized); a scratchpad lets it
//! overlap the restore traffic, shaving recovery stall.
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    println!("== Ablation: register-file vs scratchpad recomputation ==");
    println!(
        "{:>5} {:>14} {:>14} {:>12}",
        "bench", "regfile_stall", "scratch_stall", "cycles_saved"
    );
    for b in [Benchmark::Is, Benchmark::Dc, Benchmark::Lu] {
        let run = |scratchpad: bool| {
            let mut exp =
                experiment_for(b, DEFAULT_THREADS, DEFAULT_SCALE, Scheme::GlobalCoordinated)
                    .expect("workload");
            let mut spec = exp.spec().clone();
            spec.scratchpad = scratchpad;
            exp.set_spec(spec);
            exp.run_reckpt(3).expect("reckpt")
        };
        let rf = run(false);
        let sp = run(true);
        let rf_stall = rf.report.as_ref().unwrap().recovery_stall_cycles;
        let sp_stall = sp.report.as_ref().unwrap().recovery_stall_cycles;
        println!(
            "{:>5} {:>14} {:>14} {:>12}",
            b.name(),
            rf_stall,
            sp_stall,
            rf.cycles as i64 - sp.cycles as i64,
        );
    }
    println!("scratchpad recomputation hides the Slice execution behind the restore");
    println!("traffic; the win grows with omitted-value counts (is > dc > lu).");
}
