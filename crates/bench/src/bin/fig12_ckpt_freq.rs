//! Fig. 12: impact of checkpointing frequency (25/50/75/100 checkpoints).
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    print!(
        "{}",
        acr_bench::figures::fig12_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
}
