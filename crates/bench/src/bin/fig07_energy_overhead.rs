//! Fig. 7: energy overhead of checkpointing and recovery.
use acr_bench::figures::{fig07_report, main_sweep};
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    let rows = main_sweep(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep");
    print!("{}", fig07_report(&rows));
}
