//! Ablation: AddrMap capacity (Section III-C argues a small AddrMap
//! suffices because unique addresses per interval are bounded by the
//! checkpoint period). Sweeps per-core capacity and reports coverage
//! degradation.
use acr::AddrMapConfig;
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    println!("== Ablation: AddrMap capacity (per core) ==");
    println!(
        "{:>5} {:>9} {:>9} {:>11} {:>10} {:>10}",
        "bench", "capacity", "szRed%", "rejections", "peak_live", "tRed%"
    );
    for b in [Benchmark::Is, Benchmark::Ft, Benchmark::Bt] {
        for cap in [64usize, 256, 1024, 4096, 16384] {
            let mut exp =
                experiment_for(b, DEFAULT_THREADS, DEFAULT_SCALE, Scheme::GlobalCoordinated)
                    .expect("workload");
            let mut spec = exp.spec().clone();
            spec.addrmap = AddrMapConfig {
                capacity_per_core: cap,
            };
            exp.set_spec(spec);
            let c = exp.run_ckpt(0).expect("ckpt");
            let r = exp.run_reckpt(0).expect("reckpt");
            let rep = r.report.as_ref().expect("report");
            let acr = r.acr.as_ref().expect("acr stats");
            let t_red = 100.0 * (c.cycles as f64 - r.cycles as f64) / c.cycles as f64;
            println!(
                "{:>5} {:>9} {:>9.2} {:>11} {:>10} {:>10.2}",
                b.name(),
                cap,
                rep.overall_reduction_pct(),
                acr.capacity_rejections,
                acr.addrmap_peak_live,
                t_red,
            );
        }
    }
    println!("expectation: coverage saturates once capacity exceeds the per-interval");
    println!("unique-store footprint; small maps degrade gracefully to the baseline.");
}
