//! Table II: checkpoint size reduction vs Slice-length threshold.
use acr_bench::{DEFAULT_SCALE, DEFAULT_THREADS};

fn main() {
    print!(
        "{}",
        acr_bench::figures::table2_report(DEFAULT_THREADS, DEFAULT_SCALE).expect("sweep")
    );
}
