//! Supplementary analysis: per-component energy breakdown (the McPAT-style
//! view) for No_Ckpt / Ckpt_NE / ReCkpt_NE, showing where ACR's savings
//! come from (DRAM/log traffic) and what its own hardware costs (AddrMap,
//! operand buffer, recomputation ALUs).
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    println!("== Energy breakdown by component (mJ) ==");
    println!(
        "{:>5} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "bench", "config", "core", "cache", "dram", "net", "acr", "static", "total"
    );
    for b in [Benchmark::Is, Benchmark::Bt, Benchmark::Cg] {
        let mut exp = experiment_for(b, DEFAULT_THREADS, DEFAULT_SCALE, Scheme::GlobalCoordinated)
            .expect("workload");
        let runs = [
            exp.run_no_ckpt().expect("no"),
            exp.run_ckpt(0).expect("ckpt"),
            exp.run_reckpt(0).expect("reckpt"),
        ];
        for r in &runs {
            let e = &r.energy;
            let mj = 1e3;
            println!(
                "{:>5} {:>10} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>9.4}",
                b.name(),
                r.label,
                e.core_j * mj,
                e.cache_j * mj,
                e.dram_j * mj,
                e.network_j * mj,
                e.acr_j * mj,
                e.static_j * mj,
                e.total_joules() * mj,
            );
        }
    }
    println!("ACR's own hardware energy stays orders of magnitude below the DRAM traffic");
    println!("it eliminates — the technology-scaling imbalance the paper builds on.");
}
