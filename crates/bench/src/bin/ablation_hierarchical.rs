//! Extension: hierarchical checkpointing (Section II-A notes in-memory
//! checkpointing can be "the first level in a hierarchical checkpointing
//! framework"). Every k-th checkpoint also streams to slow second-level
//! storage; ACR's size reductions cut that traffic proportionally.
use acr_bench::{experiment_for, DEFAULT_SCALE, DEFAULT_THREADS};
use acr_ckpt::{Scheme, SecondaryStorage};
use acr_workloads::Benchmark;

fn main() {
    println!("== Extension: hierarchical (two-level) checkpointing ==");
    println!(
        "{:>5} {:>6} {:>12} {:>12} {:>9} {:>9}",
        "bench", "every", "Ckpt L2 B", "ReCkpt L2 B", "L2red%", "tRed%"
    );
    for b in [Benchmark::Is, Benchmark::Ft, Benchmark::Lu] {
        for every in [3u32, 5, 10] {
            let mut exp =
                experiment_for(b, DEFAULT_THREADS, DEFAULT_SCALE, Scheme::GlobalCoordinated)
                    .expect("workload");
            let mut spec = exp.spec().clone();
            spec.secondary = Some(SecondaryStorage {
                every,
                ..Default::default()
            });
            exp.set_spec(spec);
            let c = exp.run_ckpt(0).expect("ckpt");
            let r = exp.run_reckpt(0).expect("reckpt");
            let cb = c.report.as_ref().unwrap().secondary_bytes;
            let rb = r.report.as_ref().unwrap().secondary_bytes;
            let l2red = if cb > 0 {
                100.0 * (cb - rb) as f64 / cb as f64
            } else {
                0.0
            };
            let t_red = 100.0 * (c.cycles as f64 - r.cycles as f64) / c.cycles as f64;
            println!(
                "{:>5} {:>6} {:>12} {:>12} {:>9.2} {:>9.2}",
                b.name(),
                every,
                cb,
                rb,
                l2red,
                t_red
            );
        }
    }
    println!("level-2 traffic shrinks by the per-checkpoint size reduction; with a slow");
    println!("second level the time savings exceed the in-memory-only configuration.");
}
