//! Section V-D4: scalability with 8/16/32 threads.
use acr_bench::DEFAULT_SCALE;

fn main() {
    print!(
        "{}",
        acr_bench::figures::scalability_report(DEFAULT_SCALE).expect("sweep")
    );
}
