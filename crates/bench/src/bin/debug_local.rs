//! Internal: local-vs-global preview (not a figure binary).
use acr_bench::experiment_for;
use acr_ckpt::Scheme;
use acr_workloads::Benchmark;

fn main() {
    println!(
        "{:>4} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "name", "ckptNE_g", "ckptNE_l", "ratio", "reNE_g", "reNE_l", "ratio"
    );
    for b in Benchmark::ALL {
        let mut g = experiment_for(b, 8, 1.0, Scheme::GlobalCoordinated).unwrap();
        let mut l = experiment_for(b, 8, 1.0, Scheme::LocalCoordinated).unwrap();
        let cg_ = g.run_ckpt(0).unwrap();
        let cl = l.run_ckpt(0).unwrap();
        let rg = g.run_reckpt(0).unwrap();
        let rl = l.run_reckpt(0).unwrap();
        println!(
            "{:>4} {:>9} {:>9} {:7.3} | {:>9} {:>9} {:7.3}",
            b.name(),
            cg_.cycles,
            cl.cycles,
            cl.cycles as f64 / cg_.cycles as f64,
            rg.cycles,
            rl.cycles,
            rl.cycles as f64 / rg.cycles as f64,
        );
    }
}
