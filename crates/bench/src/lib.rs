//! # acr-bench — experiment harness
//!
//! Shared runners for the per-figure/per-table binaries in `src/bin/`.
//! Each binary regenerates one table or figure of the paper; see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for measured
//! vs. paper numbers.

#![forbid(unsafe_code)]

pub mod figures;

use acr::{Experiment, ExperimentError, ExperimentSpec, RunResult};
use acr_ckpt::Scheme;
use acr_workloads::{generate, Benchmark, WorkloadConfig};

/// Default thread count of the paper's main figures.
pub const DEFAULT_THREADS: u32 = 8;

/// Default workload scale for harness runs (full ROI).
pub const DEFAULT_SCALE: f64 = 1.0;

/// Builds the experiment for one benchmark with the paper's defaults
/// (Table I machine, 25 checkpoints, per-benchmark Slice threshold).
pub fn experiment_for(
    bench: Benchmark,
    threads: u32,
    scale: f64,
    scheme: Scheme,
) -> Result<Experiment, ExperimentError> {
    let wl = WorkloadConfig::default()
        .with_threads(threads)
        .with_scale(scale);
    let program = generate(bench, &wl);
    let spec = ExperimentSpec::default()
        .with_cores(threads)
        .with_threshold(bench.default_threshold())
        .with_scheme(scheme);
    Experiment::new(program, spec)
}

/// The five main configurations for one benchmark (Figs. 6–8).
#[derive(Debug, Clone)]
pub struct MainRow {
    /// Benchmark.
    pub bench: Benchmark,
    /// `No_Ckpt` baseline.
    pub no_ckpt: RunResult,
    /// `Ckpt_NE`.
    pub ckpt_ne: RunResult,
    /// `Ckpt_E` (one error).
    pub ckpt_e: RunResult,
    /// `ReCkpt_NE`.
    pub reckpt_ne: RunResult,
    /// `ReCkpt_E` (one error).
    pub reckpt_e: RunResult,
}

impl MainRow {
    /// Runs all five configurations for `bench`.
    pub fn run(
        bench: Benchmark,
        threads: u32,
        scale: f64,
        scheme: Scheme,
    ) -> Result<Self, ExperimentError> {
        let mut exp = experiment_for(bench, threads, scale, scheme)?;
        Ok(MainRow {
            bench,
            no_ckpt: exp.run_no_ckpt()?,
            ckpt_ne: exp.run_ckpt(0)?,
            ckpt_e: exp.run_ckpt(1)?,
            reckpt_ne: exp.run_reckpt(0)?,
            reckpt_e: exp.run_reckpt(1)?,
        })
    }
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Formats a percentage cell.
pub fn pct(x: f64) -> String {
    format!("{x:7.2}")
}

/// Prints a header row followed by a separator.
pub fn print_header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>9}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(10 * cols.len()));
}

/// Prints one labelled row of numeric cells.
pub fn print_row(label: &str, cells: &[f64]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:9.2}")).collect();
    println!("{label:>9} {}", row.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;
    use acr_workloads::Benchmark;

    #[test]
    fn static_reports_render() {
        let f1 = crate::figures::fig01_report();
        assert!(f1.contains("Fig 1"));
        assert!(f1.lines().count() > 9);
        let t1 = crate::figures::table1_report();
        assert!(t1.contains("1.09 GHz"));
        assert!(t1.contains("7.6 GB/s"));
    }

    #[test]
    fn main_row_runs_one_benchmark_small() {
        let row =
            MainRow::run(Benchmark::Cg, 2, 0.1, acr_ckpt::Scheme::GlobalCoordinated).expect("runs");
        assert!(row.ckpt_ne.cycles >= row.no_ckpt.cycles);
        let f6 = crate::figures::fig06_report(std::slice::from_ref(&row));
        assert!(f6.contains("cg"));
        let f9 = crate::figures::fig09_report(std::slice::from_ref(&row));
        assert!(f9.contains("Overall"));
    }

    #[test]
    fn helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(pct(1.234), "   1.23");
    }
}
