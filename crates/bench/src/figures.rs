//! Report generators: one function per table/figure of the paper.
//!
//! Every function returns the formatted report as a `String`; the binaries
//! in `src/bin/` print them, and `repro_all` concatenates everything.

use std::fmt::Write as _;

use acr::{Experiment, ExperimentError};
use acr_ckpt::Scheme;
use acr_sim::MachineConfig;
use acr_workloads::Benchmark;

use crate::{experiment_for, mean, MainRow};

/// Fig. 1: relative component error rate, 8 %/bit/generation.
pub fn fig01_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig 1: relative component error rate (8%/bit/generation) =="
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>14}",
        "generation", "per-bit", "per-component"
    );
    for g in 0..=8 {
        let _ = writeln!(
            out,
            "{:>10} {:>12.3} {:>14.2}",
            g,
            acr_ckpt::errors::per_bit_error_rate(g),
            acr_ckpt::errors::component_error_rate(g),
        );
    }
    out
}

/// Table I: the simulated architecture.
pub fn table1_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: simulated architecture ==");
    let _ = writeln!(out, "{}", MachineConfig::default().table_i());
    out
}

/// Runs the five main configurations for every benchmark (the shared
/// sweep behind Figs. 6–9).
pub fn main_sweep(threads: u32, scale: f64) -> Result<Vec<MainRow>, ExperimentError> {
    Benchmark::ALL
        .iter()
        .map(|&b| MainRow::run(b, threads, scale, Scheme::GlobalCoordinated))
        .collect()
}

/// Fig. 6: % execution-time overhead of checkpointing and recovery
/// w.r.t. `No_Ckpt`.
pub fn fig06_report(rows: &[MainRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 6: execution time overhead vs No_Ckpt (%) ==");
    let _ = writeln!(
        out,
        "{:>5} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "bench", "Ckpt_NE", "Ckpt_E", "ReCkpt_NE", "ReCkpt_E", "NEred%ofCkpt", "Ered%ofCkpt"
    );
    let mut ne_reds = Vec::new();
    let mut e_reds = Vec::new();
    for r in rows {
        let c_ne = r.ckpt_ne.time_overhead_pct(&r.no_ckpt);
        let c_e = r.ckpt_e.time_overhead_pct(&r.no_ckpt);
        let re_ne = r.reckpt_ne.time_overhead_pct(&r.no_ckpt);
        let re_e = r.reckpt_e.time_overhead_pct(&r.no_ckpt);
        let ne_red =
            100.0 * (r.ckpt_ne.cycles - r.reckpt_ne.cycles) as f64 / r.ckpt_ne.cycles as f64;
        let e_red =
            100.0 * (r.ckpt_e.cycles as f64 - r.reckpt_e.cycles as f64) / r.ckpt_e.cycles as f64;
        ne_reds.push(ne_red);
        e_reds.push(e_red);
        let _ = writeln!(
            out,
            "{:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>12.2} {:>12.2}",
            r.bench.name(),
            c_ne,
            c_e,
            re_ne,
            re_e,
            ne_red,
            e_red
        );
    }
    let _ = writeln!(
        out,
        "{:>5} {:>39} {:>12.2} {:>12.2}",
        "avg",
        "",
        mean(&ne_reds),
        mean(&e_reds)
    );
    let _ = writeln!(
        out,
        "paper: ReCkpt_NE cuts Ckpt_NE's time overhead by up to 28.81% (is), 11.92% avg, min 2.12% (cg);"
    );
    let _ = writeln!(
        out,
        "       ReCkpt_E cuts Ckpt_E by up to 26.68% (is), 12.39% avg, min 1.9% (cg)."
    );
    out
}

/// Fig. 7: % energy overhead w.r.t. `No_Ckpt`.
pub fn fig07_report(rows: &[MainRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 7: energy overhead vs No_Ckpt (%) ==");
    let _ = writeln!(
        out,
        "{:>5} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "bench", "Ckpt_NE", "Ckpt_E", "ReCkpt_NE", "ReCkpt_E", "NEred%ofCkpt", "Ered%ofCkpt"
    );
    let mut ne_reds = Vec::new();
    let mut e_reds = Vec::new();
    for r in rows {
        let base = r.no_ckpt.energy.total_joules();
        let oh = |x: f64| 100.0 * (x - base) / base;
        let c_ne = r.ckpt_ne.energy.total_joules();
        let c_e = r.ckpt_e.energy.total_joules();
        let re_ne = r.reckpt_ne.energy.total_joules();
        let re_e = r.reckpt_e.energy.total_joules();
        let ne_red = 100.0 * (c_ne - re_ne) / c_ne;
        let e_red = 100.0 * (c_e - re_e) / c_e;
        ne_reds.push(ne_red);
        e_reds.push(e_red);
        let _ = writeln!(
            out,
            "{:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>12.2} {:>12.2}",
            r.bench.name(),
            oh(c_ne),
            oh(c_e),
            oh(re_ne),
            oh(re_e),
            ne_red,
            e_red
        );
    }
    let _ = writeln!(
        out,
        "{:>5} {:>39} {:>12.2} {:>12.2}",
        "avg",
        "",
        mean(&ne_reds),
        mean(&e_reds)
    );
    let _ = writeln!(
        out,
        "paper: ReCkpt_NE cuts Ckpt_NE's energy overhead by up to 26.93% (is), 12.53% avg, min 1.75% (cg);"
    );
    let _ = writeln!(
        out,
        "       ReCkpt_E cuts Ckpt_E by up to 30% (dc), 13.47% avg, min 1.86% (cg)."
    );
    out
}

/// Fig. 8: % EDP reduction of `ReCkpt_*` w.r.t. `Ckpt_*`.
pub fn fig08_report(rows: &[MainRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 8: EDP reduction of ReCkpt vs Ckpt (%) ==");
    let _ = writeln!(out, "{:>5} {:>12} {:>12}", "bench", "NE", "E");
    let mut ne = Vec::new();
    let mut e = Vec::new();
    for r in rows {
        let ne_red = r.reckpt_ne.edp_reduction_pct(&r.ckpt_ne);
        let e_red = r.reckpt_e.edp_reduction_pct(&r.ckpt_e);
        ne.push(ne_red);
        e.push(e_red);
        let _ = writeln!(
            out,
            "{:>5} {:>12.2} {:>12.2}",
            r.bench.name(),
            ne_red,
            e_red
        );
    }
    let _ = writeln!(out, "{:>5} {:>12.2} {:>12.2}", "avg", mean(&ne), mean(&e));
    let _ = writeln!(
        out,
        "paper: NE up to 47.98% (is), 22.47% avg; E up to 48.07% (dc), 23.41% avg."
    );
    out
}

/// Fig. 9: % checkpoint size reduction under `ReCkpt_NE` (Overall and
/// Max).
pub fn fig09_report(rows: &[MainRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig 9: checkpoint size reduction under ReCkpt_NE (%) =="
    );
    let _ = writeln!(out, "{:>5} {:>9} {:>9}", "bench", "Overall", "Max");
    let mut overall = Vec::new();
    for r in rows {
        let rep = r.reckpt_ne.report.as_ref().expect("reckpt has a report");
        overall.push(rep.overall_reduction_pct());
        let _ = writeln!(
            out,
            "{:>5} {:>9.2} {:>9.2}",
            r.bench.name(),
            rep.overall_reduction_pct(),
            rep.max_interval_reduction_pct()
        );
    }
    let _ = writeln!(out, "{:>5} {:>9.2}", "avg", mean(&overall));
    let _ = writeln!(
        out,
        "paper: Overall up to 75.74% (is), avg 38.31%, min 6.99% (cg); Max: dc largest 58.3%,"
    );
    let _ = writeln!(
        out,
        "       is only 2.04% (its largest checkpoint is the non-recomputable permutation), ft 0.05%."
    );
    out
}

/// Table II: total checkpoint size reduction vs Slice-length threshold.
pub fn table2_report(threads: u32, scale: f64) -> Result<String, ExperimentError> {
    let thresholds = [5usize, 10, 20, 30, 40, 50];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table II: checkpoint size reduction (%) vs Slice threshold =="
    );
    let _ = write!(out, "{:>5}", "bench");
    for t in thresholds {
        let _ = write!(out, " {t:>7}");
    }
    let _ = writeln!(out);
    for b in Benchmark::ALL {
        let mut exp = experiment_for(b, threads, scale, Scheme::GlobalCoordinated)?;
        let _ = write!(out, "{:>5}", b.name());
        for t in thresholds {
            let mut spec = exp.spec().clone();
            spec.slicer.threshold = t;
            exp.set_spec(spec);
            let r = exp.run_reckpt(0)?;
            let red = r
                .report
                .as_ref()
                .map(|rep| rep.overall_reduction_pct())
                .unwrap_or(0.0);
            let _ = write!(out, " {red:>7.2}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "paper (at 10/20/30/40/50): bt 36.5/45.1/85.4/88.4/89.9  cg 7.0/67.1/89.7/89.8/89.8"
    );
    let _ = writeln!(
        out,
        "  ft 23.3/70.7/88.5/99.5/99.7  is 97.4@10 (75.7@5)  lu 42.7/46.7/64.4/74.7/81.1"
    );
    let _ = writeln!(
        out,
        "  mg 11.6/19.7/88.0/90.3/90.2  sp 37.4/47.9/71.8/93.8/96.1"
    );
    Ok(out)
}

/// Fig. 10: per-interval checkpoint size reduction over time for `bt`.
pub fn fig10_report(threads: u32, scale: f64) -> Result<String, ExperimentError> {
    let thresholds = [10usize, 20, 30, 40, 50];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig 10: per-interval checkpoint size reduction over time (bt) =="
    );
    let mut exp = experiment_for(Benchmark::Bt, threads, scale, Scheme::GlobalCoordinated)?;
    let mut series: Vec<(usize, Vec<f64>)> = Vec::new();
    for t in thresholds {
        let mut spec = exp.spec().clone();
        spec.slicer.threshold = t;
        exp.set_spec(spec);
        let r = exp.run_reckpt(0)?;
        let reds = r
            .report
            .as_ref()
            .map(|rep| rep.intervals.iter().map(|i| i.reduction_pct()).collect())
            .unwrap_or_default();
        series.push((t, reds));
    }
    let n = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let _ = write!(out, "{:>8}", "interval");
    for (t, _) in &series {
        let _ = write!(out, " {:>7}", format!("thr{t}"));
    }
    let _ = writeln!(out);
    for i in 0..n {
        let _ = write!(out, "{i:>8}");
        for (_, s) in &series {
            match s.get(i) {
                Some(v) => {
                    let _ = write!(out, " {v:>7.2}");
                }
                None => {
                    let _ = write!(out, " {:>7}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "paper: reduction varies across intervals; higher thresholds shift the whole band up."
    );
    Ok(out)
}

/// Fig. 11: % time overhead vs number of errors (1..5).
pub fn fig11_report(threads: u32, scale: f64) -> Result<String, ExperimentError> {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 11: time overhead (%) vs number of errors ==");
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "bench", "errors", "Ckpt_E", "ReCkpt_E", "tRed%", "edpRed%"
    );
    for b in Benchmark::ALL {
        let mut exp = experiment_for(b, threads, scale, Scheme::GlobalCoordinated)?;
        let no = exp.run_no_ckpt()?;
        for errors in 1..=5u32 {
            let c = exp.run_ckpt(errors)?;
            let r = exp.run_reckpt(errors)?;
            let t_red = 100.0 * (c.cycles as f64 - r.cycles as f64) / c.cycles as f64;
            let _ = writeln!(
                out,
                "{:>5} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                b.name(),
                errors,
                c.time_overhead_pct(&no),
                r.time_overhead_pct(&no),
                t_red,
                r.edp_reduction_pct(&c),
            );
        }
    }
    let _ = writeln!(
        out,
        "paper: overhead grows with errors; ReCkpt_E cuts time by ~9-12% avg (up to 26.9%),"
    );
    let _ = writeln!(
        out,
        "       EDP by ~18-24% avg (up to 50.04%) across error counts."
    );
    Ok(out)
}

/// Fig. 12: % time overhead vs number of checkpoints (25/50/75/100).
pub fn fig12_report(threads: u32, scale: f64) -> Result<String, ExperimentError> {
    let counts = [25u32, 50, 75, 100];
    let mut out = String::new();
    let _ = writeln!(out, "== Fig 12: time overhead (%) vs checkpoint count ==");
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "bench", "ckpts", "Ckpt_NE", "ReCkpt_NE", "tRed%", "edpRed%"
    );
    for b in Benchmark::ALL {
        for n in counts {
            let mut exp = experiment_for(b, threads, scale, Scheme::GlobalCoordinated)?;
            let mut spec = exp.spec().clone();
            spec.num_checkpoints = n;
            exp.set_spec(spec);
            let no = exp.run_no_ckpt()?;
            let c = exp.run_ckpt(0)?;
            let r = exp.run_reckpt(0)?;
            let t_red = 100.0 * (c.cycles as f64 - r.cycles as f64) / c.cycles as f64;
            let _ = writeln!(
                out,
                "{:>5} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                b.name(),
                n,
                c.time_overhead_pct(&no),
                r.time_overhead_pct(&no),
                t_red,
                r.edp_reduction_pct(&c),
            );
        }
    }
    let _ = writeln!(
        out,
        "paper: overhead grows with checkpoint count; reductions 10-14% avg; interval alignment"
    );
    let _ = writeln!(
        out,
        "       can make more checkpoints cheaper (75 vs 50 for is) when they catch more slices."
    );
    Ok(out)
}

/// Section V-D4: scalability with 8/16/32 threads.
pub fn scalability_report(scale: f64) -> Result<String, ExperimentError> {
    let mut out = String::new();
    let _ = writeln!(out, "== Sec V-D4: scalability (8/16/32 threads) ==");
    let _ = writeln!(
        out,
        "{:>7} {:>5} {:>9} {:>9} {:>9} {:>9}",
        "threads", "bench", "ckptOH%", "reOH%", "tRed%", "edpRed%"
    );
    for threads in [8u32, 16, 32] {
        let mut ohs = Vec::new();
        let mut reds = Vec::new();
        let mut edps = Vec::new();
        for b in Benchmark::ALL {
            let mut exp = experiment_for(b, threads, scale, Scheme::GlobalCoordinated)?;
            let no = exp.run_no_ckpt()?;
            let c = exp.run_ckpt(0)?;
            let r = exp.run_reckpt(0)?;
            let oh = c.time_overhead_pct(&no);
            let t_red = 100.0 * (c.cycles as f64 - r.cycles as f64) / c.cycles as f64;
            let edp_red = r.edp_reduction_pct(&c);
            ohs.push(oh);
            reds.push(t_red);
            edps.push(edp_red);
            let _ = writeln!(
                out,
                "{:>7} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                threads,
                b.name(),
                oh,
                r.time_overhead_pct(&no),
                t_red,
                edp_red,
            );
        }
        let _ = writeln!(
            out,
            "{:>7} {:>5} {:>9.2} {:>19.2} {:>9.2}   <- averages",
            threads,
            "avg",
            mean(&ohs),
            mean(&reds),
            mean(&edps),
        );
    }
    let _ = writeln!(
        out,
        "paper: avg checkpointing overhead ~45/55/60% at 8/16/32 threads, always >9%;"
    );
    let _ = writeln!(
        out,
        "       reductions persist at scale (up to 28.8/17.8/19.1% time, 48.0/31.8/33.8% EDP)."
    );
    Ok(out)
}

/// Fig. 13: normalized execution time of the coordinated-local configs
/// w.r.t. their global counterparts.
pub fn fig13_report(threads: u32, scale: f64) -> Result<String, ExperimentError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig 13: normalized execution time, local / global coordinated =="
    );
    let _ = writeln!(
        out,
        "{:>5} {:>9} {:>9} {:>9} {:>9}",
        "bench", "Ckpt_NE", "Ckpt_E", "ReCkpt_NE", "ReCkpt_E"
    );
    for b in Benchmark::ALL {
        let mut glob = experiment_for(b, threads, scale, Scheme::GlobalCoordinated)?;
        let mut loc = experiment_for(b, threads, scale, Scheme::LocalCoordinated)?;
        let ratio = |l: u64, g: u64| l as f64 / g as f64;
        let c_ne = ratio(loc.run_ckpt(0)?.cycles, glob.run_ckpt(0)?.cycles);
        let c_e = ratio(loc.run_ckpt(1)?.cycles, glob.run_ckpt(1)?.cycles);
        let r_ne = ratio(loc.run_reckpt(0)?.cycles, glob.run_reckpt(0)?.cycles);
        let r_e = ratio(loc.run_reckpt(1)?.cycles, glob.run_reckpt(1)?.cycles);
        let _ = writeln!(
            out,
            "{:>5} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            b.name(),
            c_ne,
            c_e,
            r_ne,
            r_e
        );
    }
    let _ = writeln!(
        out,
        "paper: bt/cg/sp ~1.0 (all cores communicate); Ckpt_NE,Loc up to ~42% faster (ft);"
    );
    let _ = writeln!(
        out,
        "       local stays at least as effective for ReCkpt, with smaller gaps under errors."
    );
    Ok(out)
}

/// Experiment wrapper reused by ablation binaries.
pub fn experiment(
    bench: Benchmark,
    threads: u32,
    scale: f64,
) -> Result<Experiment, ExperimentError> {
    experiment_for(bench, threads, scale, Scheme::GlobalCoordinated)
}
