//! The in-memory checkpoint log.
//!
//! Log-based incremental in-memory checkpointing (Section II-A, after
//! ReVive/Rebound): upon the **first** update of a memory word within a
//! checkpoint interval, a record of the old value goes into a log stored in
//! memory; this log *is* the checkpoint (together with the register-file
//! snapshot kept by `acr-ckpt`). A per-word *logged* bit — the paper's
//! `log` bit, at word granularity per `DESIGN.md` — marks words already
//! handled in the current interval and is cleared when a new checkpoint is
//! established.
//!
//! ACR's hook is [`LogController::omit_value`]: the checkpoint handler sets
//! the logged bit *without* writing a record, omitting the (recomputable)
//! old value from the checkpoint and leaving behind an [`OmittedRecord`]
//! that recovery resolves through the `AddrMap`.

use std::collections::VecDeque;

use acr_trace::Fnv1a;

use crate::addr::WordAddr;

/// Bytes per log record: 8 B address + 8 B old value.
pub const LOG_RECORD_BYTES: u64 = 16;

/// Per-record integrity checksum: FNV-1a over the record's address, old
/// value and owning core. Stored alongside the record at log/omit time so
/// recovery can detect a torn or corrupted entry before applying it. The
/// checksum is observational — it models ECC/CRC the memory controller
/// would compute in-line and adds no simulated cost.
#[inline]
pub fn record_check(addr: WordAddr, old_value: u64, core: u32) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(addr.byte());
    h.write_u64(old_value);
    h.write(&core.to_le_bytes());
    h.finish()
}

/// An old-value record: `addr` held `old_value` at the start of the
/// record's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// The logged word.
    pub addr: WordAddr,
    /// Value at the epoch's opening checkpoint.
    pub old_value: u64,
    /// Core whose store triggered the first update (cost attribution under
    /// coordinated local checkpointing).
    pub core: u32,
    /// Integrity checksum over `(addr, old_value, core)`, set at log time.
    pub check: u64,
}

impl LogRecord {
    /// Whether the record still matches its stored checksum.
    pub fn verify(&self) -> bool {
        self.check == record_check(self.addr, self.old_value, self.core)
    }
}

/// A first-update whose old value ACR omitted from the log because it is
/// recomputable. Recovery resolves it through the `AddrMap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmittedRecord {
    /// The omitted word.
    pub addr: WordAddr,
    /// Core whose `AddrMap` holds the association (Slices are thread-local,
    /// Section III-A).
    pub core: u32,
    /// Integrity checksum over the *omitted* old value, set at omit time.
    /// The value itself is not stored (that is the whole point of
    /// omission), but its checksum lets recovery verify that Slice replay
    /// recomputed the right word without keeping the word around.
    pub check: u64,
}

impl OmittedRecord {
    /// Whether `recomputed` matches the old value whose checksum was
    /// captured when the omission was granted.
    pub fn verify_recomputed(&self, recomputed: u64) -> bool {
        self.check == record_check(self.addr, recomputed, self.core)
    }
}

/// The log of one checkpoint interval.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogEpoch {
    /// Epoch index: epoch `k` spans checkpoint `k` → checkpoint `k+1`.
    pub index: u64,
    /// Old values actually written to the log.
    pub records: Vec<LogRecord>,
    /// First updates omitted by ACR.
    pub omitted: Vec<OmittedRecord>,
}

impl LogEpoch {
    fn new(index: u64) -> Self {
        LogEpoch {
            index,
            records: Vec::new(),
            omitted: Vec::new(),
        }
    }

    /// Bytes occupied by this epoch's log records (the checkpointed data
    /// volume ACR reduces).
    pub fn bytes(&self) -> u64 {
        self.records.len() as u64 * LOG_RECORD_BYTES
    }

    /// Bytes the epoch would have occupied had nothing been omitted — the
    /// non-amnesic baseline for reduction percentages.
    pub fn baseline_bytes(&self) -> u64 {
        (self.records.len() + self.omitted.len()) as u64 * LOG_RECORD_BYTES
    }

    /// Number of first-updates in the interval (logged + omitted).
    pub fn first_updates(&self) -> usize {
        self.records.len() + self.omitted.len()
    }
}

/// Memory-controller-resident log machinery: the per-word logged bits for
/// the current interval plus the retained epochs.
///
/// ```
/// use acr_mem::{LogController, WordAddr};
///
/// let mut log = LogController::new(1024);
/// let addr = WordAddr::new(64);
/// assert!(!log.is_logged(addr));
/// log.log_value(addr, 42, 0);      // first update: old value recorded
/// assert!(log.is_logged(addr));    // later updates in the epoch skip it
/// let sealed = log.seal_epoch();   // checkpoint established
/// assert_eq!(sealed.records.len(), 1);
/// assert!(!log.is_logged(addr));   // new epoch, bit cleared
/// ```
#[derive(Debug, Clone)]
pub struct LogController {
    /// Per-word logged bits for the *current* epoch, packed 64 words per u64.
    bits: Vec<u64>,
    current: LogEpoch,
    /// Completed epochs, most recent last. At most `retained` are kept —
    /// the paper shows two most recent checkpoints suffice when detection
    /// latency ≤ period; torn-recovery resilience retains more so a
    /// corrupted generation can fall back to an older one.
    completed: VecDeque<LogEpoch>,
    /// Completed epochs to retain (defaults to [`LogController::RETAINED`]).
    retained: usize,
    /// Lifetime count of log records written (records; monotonic — never
    /// reset by seal or rollback). The independent tally the
    /// omission-decision ledger's conservation invariant checks against.
    total_logged: u64,
    /// Lifetime count of omissions granted (records; monotonic).
    total_omitted: u64,
}

impl LogController {
    /// Completed epochs retained (Section II-A: two most recent
    /// checkpoints).
    pub const RETAINED: usize = 2;

    /// Creates a controller covering `num_words` memory words, starting in
    /// epoch 0.
    pub fn new(num_words: usize) -> Self {
        Self::with_retention(num_words, Self::RETAINED)
    }

    /// Creates a controller retaining the `retained` most recent completed
    /// epochs instead of the default [`LogController::RETAINED`]. Multi-
    /// generation recovery needs the logs of every restorable checkpoint
    /// generation still on hand.
    ///
    /// # Panics
    ///
    /// Panics if `retained` is zero — recovery always needs at least the
    /// most recent completed epoch.
    pub fn with_retention(num_words: usize, retained: usize) -> Self {
        assert!(retained >= 1, "must retain at least one completed epoch");
        LogController {
            bits: vec![0; num_words.div_ceil(64)],
            current: LogEpoch::new(0),
            completed: VecDeque::with_capacity(retained + 1),
            retained,
            total_logged: 0,
            total_omitted: 0,
        }
    }

    /// Completed epochs this controller retains.
    pub fn retention(&self) -> usize {
        self.retained
    }

    /// Lifetime count of log records written, across every epoch ever
    /// opened (monotonic; unaffected by seal, pruning or rollback).
    pub fn lifetime_logged(&self) -> u64 {
        self.total_logged
    }

    /// Lifetime count of omissions granted (monotonic).
    pub fn lifetime_omitted(&self) -> u64 {
        self.total_omitted
    }

    /// The in-progress epoch.
    #[inline]
    pub fn current(&self) -> &LogEpoch {
        &self.current
    }

    /// Completed retained epochs, oldest first.
    pub fn completed(&self) -> impl Iterator<Item = &LogEpoch> {
        self.completed.iter()
    }

    /// Looks up a retained epoch (completed or current) by index.
    pub fn epoch(&self, index: u64) -> Option<&LogEpoch> {
        if self.current.index == index {
            Some(&self.current)
        } else {
            self.completed.iter().find(|e| e.index == index)
        }
    }

    /// Whether `addr` has already been handled (logged or omitted) in the
    /// current epoch — the paper's `log` bit.
    #[inline]
    pub fn is_logged(&self, addr: WordAddr) -> bool {
        let i = addr.word_index();
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, addr: WordAddr) {
        let i = addr.word_index();
        self.bits[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear_bit(&mut self, addr: WordAddr) {
        let i = addr.word_index();
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    /// Records the old value of a first update.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the word was already handled this epoch; callers
    /// must check [`LogController::is_logged`] first.
    #[inline]
    pub fn log_value(&mut self, addr: WordAddr, old_value: u64, core: u32) {
        debug_assert!(!self.is_logged(addr), "double log of {addr}");
        self.set_bit(addr);
        self.total_logged += 1;
        self.current.records.push(LogRecord {
            addr,
            old_value,
            core,
            check: record_check(addr, old_value, core),
        });
    }

    /// ACR path: marks the first update handled *without* logging the old
    /// value (it is recomputable via core `core`'s `AddrMap`). The old
    /// value is still passed in so its checksum can be captured for
    /// recovery-time verification of the recomputed word; only the
    /// checksum is retained.
    #[inline]
    pub fn omit_value(&mut self, addr: WordAddr, old_value: u64, core: u32) {
        debug_assert!(!self.is_logged(addr), "double log of {addr}");
        self.set_bit(addr);
        self.total_omitted += 1;
        self.current.omitted.push(OmittedRecord {
            addr,
            core,
            check: record_check(addr, old_value, core),
        });
    }

    /// Establishes a checkpoint: seals the current epoch, clears the logged
    /// bits and opens the next epoch. Returns a reference to the epoch just
    /// sealed.
    pub fn seal_epoch(&mut self) -> &LogEpoch {
        let next = LogEpoch::new(self.current.index + 1);
        let sealed = std::mem::replace(&mut self.current, next);
        self.completed.push_back(sealed);
        while self.completed.len() > self.retained {
            self.completed.pop_front();
        }
        self.bits.fill(0);
        self.completed.back().expect("just pushed")
    }

    /// Rolls the controller back for a recovery that restored checkpoint
    /// `safe_epoch`: discards the current epoch and any completed epochs
    /// with `index >= safe_epoch`, clears the logged bits and reopens
    /// `safe_epoch` as the current epoch. Returns the epochs discarded,
    /// newest first — exactly the logs recovery must apply.
    pub fn rollback_to(&mut self, safe_epoch: u64) -> Vec<LogEpoch> {
        let mut undone = Vec::new();
        let cur = std::mem::replace(&mut self.current, LogEpoch::new(safe_epoch));
        assert!(
            cur.index >= safe_epoch,
            "cannot roll forward: current epoch {} < safe {}",
            cur.index,
            safe_epoch
        );
        undone.push(cur);
        while let Some(back) = self.completed.back() {
            if back.index >= safe_epoch {
                undone.push(self.completed.pop_back().expect("back exists"));
            } else {
                break;
            }
        }
        self.bits.fill(0);
        undone
    }

    /// Partial rollback for coordinated *local* recovery: extracts, from
    /// the current epoch and every completed epoch with `index >=
    /// safe_epoch`, the records and omissions attributed to the cores in
    /// `victim_mask`, clearing the logged bits of exactly those words. The
    /// epoch structure (indices, non-victim records) is preserved — the
    /// non-victim cores keep executing in the current epoch. Returns the
    /// extracted per-epoch subsets, newest first.
    pub fn rollback_victims(&mut self, safe_epoch: u64, victim_mask: u64) -> Vec<LogEpoch> {
        let is_victim = |core: u32| victim_mask >> core & 1 == 1;
        let mut out = Vec::new();
        let mut indices: Vec<u64> = self
            .completed
            .iter()
            .map(|e| e.index)
            .filter(|&i| i >= safe_epoch)
            .collect();
        indices.push(self.current.index);
        indices.sort_unstable();
        for &idx in indices.iter().rev() {
            let epoch = if self.current.index == idx {
                &mut self.current
            } else {
                self.completed
                    .iter_mut()
                    .find(|e| e.index == idx)
                    .expect("index came from the deque")
            };
            let mut sub = LogEpoch::new(idx);
            let mut keep_r = Vec::with_capacity(epoch.records.len());
            for r in epoch.records.drain(..) {
                if is_victim(r.core) {
                    sub.records.push(r);
                } else {
                    keep_r.push(r);
                }
            }
            epoch.records = keep_r;
            let mut keep_o = Vec::with_capacity(epoch.omitted.len());
            for o in epoch.omitted.drain(..) {
                if is_victim(o.core) {
                    sub.omitted.push(o);
                } else {
                    keep_o.push(o);
                }
            }
            epoch.omitted = keep_o;
            out.push(sub);
        }
        // Clear logged bits for the extracted current-epoch words so the
        // victims' re-execution re-logs them.
        let current_words: Vec<WordAddr> = out
            .iter()
            .filter(|e| e.index == self.current.index)
            .flat_map(|e| {
                e.records
                    .iter()
                    .map(|r| r.addr)
                    .chain(e.omitted.iter().map(|o| o.addr))
            })
            .collect();
        for w in current_words {
            self.clear_bit(w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wa(i: u64) -> WordAddr {
        WordAddr::new(i * 8)
    }

    #[test]
    fn first_update_logged_once() {
        let mut lc = LogController::new(1024);
        assert!(!lc.is_logged(wa(5)));
        lc.log_value(wa(5), 42, 0);
        assert!(lc.is_logged(wa(5)));
        assert_eq!(lc.current().records.len(), 1);
        assert_eq!(lc.current().bytes(), LOG_RECORD_BYTES);
    }

    #[test]
    fn omitted_counts_in_baseline_not_bytes() {
        let mut lc = LogController::new(1024);
        lc.log_value(wa(1), 10, 0);
        lc.omit_value(wa(2), 20, 0);
        let e = lc.current();
        assert_eq!(e.bytes(), LOG_RECORD_BYTES);
        assert_eq!(e.baseline_bytes(), 2 * LOG_RECORD_BYTES);
        assert_eq!(e.first_updates(), 2);
    }

    #[test]
    fn seal_clears_bits_and_retains_two() {
        let mut lc = LogController::new(1024);
        lc.log_value(wa(3), 1, 0);
        lc.seal_epoch();
        assert!(!lc.is_logged(wa(3)));
        assert_eq!(lc.current().index, 1);
        lc.log_value(wa(3), 2, 0); // re-loggable in new epoch
        lc.seal_epoch();
        lc.seal_epoch();
        let idx: Vec<u64> = lc.completed().map(|e| e.index).collect();
        assert_eq!(idx, vec![1, 2]);
        assert!(lc.epoch(0).is_none());
        assert!(lc.epoch(3).is_some()); // current
    }

    #[test]
    fn rollback_returns_undone_epochs_newest_first() {
        let mut lc = LogController::new(1024);
        lc.log_value(wa(1), 11, 0); // epoch 0
        lc.seal_epoch();
        lc.log_value(wa(2), 22, 1); // epoch 1
        lc.seal_epoch();
        lc.log_value(wa(3), 33, 0); // epoch 2 (current)

        // Error detected in epoch 2; safe checkpoint is c_1, so epochs 2
        // and 1 are undone.
        let undone = lc.rollback_to(1);
        assert_eq!(undone.len(), 2);
        assert_eq!(undone[0].index, 2);
        assert_eq!(undone[1].index, 1);
        assert_eq!(lc.current().index, 1);
        assert!(!lc.is_logged(wa(3)));
        // Epoch 0 survives.
        assert_eq!(lc.completed().count(), 1);
    }

    #[test]
    fn rollback_victims_extracts_only_victim_records() {
        let mut lc = LogController::new(1024);
        lc.log_value(wa(1), 11, 0); // epoch 0, core 0
        lc.log_value(wa(2), 22, 1); // epoch 0, core 1
        lc.seal_epoch();
        lc.log_value(wa(3), 33, 0); // epoch 1, core 0
        lc.omit_value(wa(4), 44, 1); // epoch 1, core 1 (omitted)

        // Victim = core 1 only, safe epoch = 0: extract core 1's entries
        // from epochs >= 0; core 0's stay.
        let undone = lc.rollback_victims(0, 0b10);
        let all_records: Vec<_> = undone.iter().flat_map(|e| e.records.iter()).collect();
        let all_omitted: Vec<_> = undone.iter().flat_map(|e| e.omitted.iter()).collect();
        assert_eq!(all_records.len(), 1);
        assert_eq!(all_records[0].addr, wa(2));
        assert_eq!(all_omitted.len(), 1);
        assert_eq!(all_omitted[0].addr, wa(4));
        // Non-victim entries preserved, epoch indices unchanged.
        assert_eq!(lc.current().index, 1);
        assert_eq!(lc.current().records.len(), 1);
        assert_eq!(lc.current().records[0].addr, wa(3));
        // Victim's current-epoch word is re-loggable; non-victim's is not.
        assert!(!lc.is_logged(wa(4)));
        assert!(lc.is_logged(wa(3)));
    }

    #[test]
    fn rollback_victims_newest_first() {
        let mut lc = LogController::new(1024);
        lc.log_value(wa(1), 1, 0);
        lc.seal_epoch();
        lc.log_value(wa(2), 2, 0);
        let undone = lc.rollback_victims(0, 0b1);
        let idx: Vec<u64> = undone.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![1, 0]);
    }

    #[test]
    fn lifetime_totals_survive_seal_and_rollback() {
        let mut lc = LogController::new(1024);
        lc.log_value(wa(1), 11, 0);
        lc.omit_value(wa(2), 22, 0);
        lc.seal_epoch();
        lc.log_value(wa(1), 12, 0);
        let _ = lc.rollback_to(0);
        // Re-execution after rollback re-logs the word: counted again.
        lc.log_value(wa(1), 11, 0);
        assert_eq!(lc.lifetime_logged(), 3);
        assert_eq!(lc.lifetime_omitted(), 1);
    }

    #[test]
    fn record_checksums_verify_and_detect_corruption() {
        let mut lc = LogController::new(1024);
        lc.log_value(wa(7), 0xdead_beef, 1);
        let rec = lc.current().records[0];
        assert!(rec.verify());
        let torn = LogRecord {
            old_value: rec.old_value ^ (1 << 17),
            ..rec
        };
        assert!(!torn.verify());
    }

    #[test]
    fn omitted_checksum_verifies_recomputed_value() {
        let mut lc = LogController::new(1024);
        lc.omit_value(wa(9), 0x1234, 0);
        let om = lc.current().omitted[0];
        assert!(om.verify_recomputed(0x1234));
        assert!(!om.verify_recomputed(0x1235)); // wrong replay output
    }

    #[test]
    fn with_retention_keeps_extra_generations() {
        let mut lc = LogController::with_retention(1024, 4);
        assert_eq!(lc.retention(), 4);
        for v in 0..6 {
            lc.log_value(wa(1), v, 0);
            lc.seal_epoch();
        }
        let idx: Vec<u64> = lc.completed().map(|e| e.index).collect();
        assert_eq!(idx, vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one completed epoch")]
    fn zero_retention_rejected() {
        let _ = LogController::with_retention(64, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double log")]
    fn double_log_panics_in_debug() {
        let mut lc = LogController::new(64);
        lc.log_value(wa(0), 1, 0);
        lc.log_value(wa(0), 2, 0);
    }
}
