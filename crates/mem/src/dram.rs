//! Main memory: functional image + controller latency/bandwidth model.
//!
//! Table I: 120 ns access latency, 7.6 GB/s per controller, one controller
//! per four cores. Lines are interleaved across controllers by line
//! address. Checkpoint flushes are bandwidth-bound: each controller drains
//! its share of dirty lines at its sustained bandwidth, and the flush
//! completes when the slowest controller finishes (the cores are stalled in
//! a coordinated checkpoint, so this is the stall the paper charges).

use crate::addr::{LineAddr, WordAddr, LINE_BYTES};

/// Functional memory image: the single source of truth for data values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemImage {
    words: Vec<u64>,
}

impl MemImage {
    /// Creates a zeroed image of `bytes` bytes (rounded up to whole lines).
    pub fn new(bytes: u64) -> Self {
        let lines = bytes.div_ceil(LINE_BYTES);
        MemImage {
            words: vec![0; (lines * LINE_BYTES / acr_isa::WORD_BYTES) as usize],
        }
    }

    /// Number of whole cache lines covered.
    pub fn num_lines(&self) -> usize {
        self.words.len() / crate::addr::WORDS_PER_LINE as usize
    }

    /// Number of words.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the image; the simulator bounds-checks
    /// accesses before reaching the image.
    #[inline]
    pub fn read(&self, addr: WordAddr) -> u64 {
        self.words[addr.word_index()]
    }

    /// Writes the word at `addr`, returning the previous value.
    #[inline]
    pub fn write(&mut self, addr: WordAddr, value: u64) -> u64 {
        std::mem::replace(&mut self.words[addr.word_index()], value)
    }

    /// Checks whether a word index is in bounds.
    #[inline]
    pub fn in_bounds(&self, addr: WordAddr) -> bool {
        addr.word_index() < self.words.len()
    }

    /// A full snapshot for correctness oracles (zero simulated cost).
    pub fn snapshot(&self) -> Vec<u64> {
        self.words.clone()
    }

    /// Raw word view.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Latency/bandwidth parameters of the DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Access latency in core cycles (Table I: 120 ns ≈ 131 cycles at
    /// 1.09 GHz).
    pub latency_cycles: u64,
    /// Sustained bandwidth per controller in bytes per core cycle
    /// (7.6 GB/s at 1.09 GHz ≈ 6.97 B/cycle).
    pub bytes_per_cycle_per_ctrl: f64,
    /// Cores per memory controller (Table I: 4).
    pub cores_per_ctrl: u32,
}

impl DramConfig {
    /// Number of controllers for a machine with `cores` cores (at least 1).
    pub fn num_controllers(&self, cores: u32) -> u32 {
        cores.div_ceil(self.cores_per_ctrl).max(1)
    }

    /// Home controller of a line, for `ctrls` controllers.
    #[inline]
    pub fn home(&self, line: LineAddr, ctrls: u32) -> u32 {
        (line.0 % u64::from(ctrls)) as u32
    }

    /// Cycles for one controller to transfer `bytes` at sustained
    /// bandwidth.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle_per_ctrl).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_read_write_roundtrip() {
        let mut m = MemImage::new(4096);
        let a = WordAddr::new(128);
        assert_eq!(m.read(a), 0);
        assert_eq!(m.write(a, 77), 0);
        assert_eq!(m.read(a), 77);
        assert_eq!(m.write(a, 1), 77);
    }

    #[test]
    fn image_rounds_up_to_lines() {
        let m = MemImage::new(65); // 2 lines
        assert_eq!(m.num_lines(), 2);
        assert_eq!(m.num_words(), 16);
    }

    #[test]
    fn controller_count_and_home() {
        let cfg = DramConfig {
            latency_cycles: 131,
            bytes_per_cycle_per_ctrl: 6.97,
            cores_per_ctrl: 4,
        };
        assert_eq!(cfg.num_controllers(8), 2);
        assert_eq!(cfg.num_controllers(32), 8);
        assert_eq!(cfg.num_controllers(1), 1);
        assert_eq!(cfg.home(LineAddr(5), 2), 1);
        assert_eq!(cfg.home(LineAddr(4), 2), 0);
    }

    #[test]
    fn transfer_cycles_bandwidth_bound() {
        let cfg = DramConfig {
            latency_cycles: 131,
            bytes_per_cycle_per_ctrl: 8.0,
            cores_per_ctrl: 4,
        };
        assert_eq!(cfg.transfer_cycles(64), 8);
        assert_eq!(cfg.transfer_cycles(0), 0);
        assert_eq!(cfg.transfer_cycles(65), 9);
    }
}
