//! Inter-core communication tracking for coordinated *local* checkpointing.
//!
//! Section V-E: under coordinated local checkpointing, only cores that
//! *communicated* within the current checkpoint interval need to checkpoint
//! (and roll back) together. Identifying communicating cores "necessitates
//! a mechanism to track inter-core data dependencies"; in hardware this
//! piggybacks on the directory. We track, per memory word, the last writer
//! and the reader set within the current interval and accumulate a
//! symmetric communication graph:
//!
//! * RAW: core *i* reads a word written by *j* in this interval → edge.
//! * WAW/WAR: core *i* writes a word written or read by *j* in this
//!   interval → edge.
//!
//! At each checkpoint the engine takes the connected components of the
//! graph as the checkpoint groups and then resets the tracker.

/// Tracks intra-interval sharing and the induced communication graph.
#[derive(Debug, Clone)]
pub struct SharingTracker {
    num_cores: u32,
    /// Interval stamp; per-word state older than this is ignored.
    stamp: u32,
    /// Per-word last writer (core + stamp).
    writer: Vec<(u32, u32)>,
    /// Per-word reader mask + stamp.
    readers: Vec<(u64, u32)>,
    /// Adjacency masks: `graph[i]` has bit `j` set if `i` and `j`
    /// communicated this interval.
    graph: Vec<u64>,
}

impl SharingTracker {
    /// Creates a tracker for `num_words` words and `num_cores` cores
    /// (≤ 64).
    ///
    /// # Panics
    ///
    /// Panics if `num_cores > 64`.
    pub fn new(num_words: usize, num_cores: u32) -> Self {
        assert!(num_cores <= 64, "sharer masks support up to 64 cores");
        SharingTracker {
            num_cores,
            stamp: 1,
            writer: vec![(0, 0); num_words],
            readers: vec![(0, 0); num_words],
            graph: vec![0; num_cores as usize],
        }
    }

    #[inline]
    fn edge(&mut self, a: u32, b: u32) {
        if a != b {
            self.graph[a as usize] |= 1 << b;
            self.graph[b as usize] |= 1 << a;
        }
    }

    /// Records a load of word index `w` by `core`.
    #[inline]
    pub fn on_read(&mut self, core: u32, w: usize) {
        let (wr, ws) = self.writer[w];
        if ws == self.stamp {
            self.edge(core, wr);
        }
        let (mask, rs) = self.readers[w];
        let mask = if rs == self.stamp { mask } else { 0 };
        self.readers[w] = (mask | (1 << core), self.stamp);
    }

    /// Records a store to word index `w` by `core`.
    #[inline]
    pub fn on_write(&mut self, core: u32, w: usize) {
        let (wr, ws) = self.writer[w];
        if ws == self.stamp {
            self.edge(core, wr);
        }
        let (mask, rs) = self.readers[w];
        if rs == self.stamp {
            let mut m = mask & !(1u64 << core);
            while m != 0 {
                let j = m.trailing_zeros();
                self.edge(core, j);
                m &= m - 1;
            }
        }
        self.writer[w] = (core, self.stamp);
    }

    /// Connected components of the communication graph — the checkpoint
    /// groups. Each component is returned as a core bitmask; singleton
    /// (non-communicating) cores form their own groups.
    pub fn groups(&self) -> Vec<u64> {
        let n = self.num_cores as usize;
        let mut seen = 0u64;
        let mut out = Vec::new();
        for start in 0..n {
            if seen >> start & 1 == 1 {
                continue;
            }
            // BFS over adjacency masks.
            let mut comp = 1u64 << start;
            let mut frontier = 1u64 << start;
            while frontier != 0 {
                let mut next = 0u64;
                let mut f = frontier;
                while f != 0 {
                    let i = f.trailing_zeros() as usize;
                    f &= f - 1;
                    next |= self.graph[i] & !comp;
                }
                comp |= next;
                frontier = next;
            }
            seen |= comp;
            out.push(comp);
        }
        out
    }

    /// Starts a new interval: clears the graph and (lazily, via stamping)
    /// the per-word state.
    pub fn new_interval(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: hard-reset per-word state to avoid aliasing.
            self.writer.fill((0, 0));
            self.readers.fill((0, 0));
            self.stamp = 1;
        }
        self.graph.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_creates_edge() {
        let mut t = SharingTracker::new(64, 4);
        t.on_write(1, 5);
        t.on_read(2, 5);
        let g = t.groups();
        assert!(g.contains(&0b110)); // cores 1 and 2 together
        assert!(g.contains(&0b001));
        assert!(g.contains(&0b1000));
    }

    #[test]
    fn waw_and_war_create_edges() {
        let mut t = SharingTracker::new(64, 4);
        t.on_write(0, 7);
        t.on_write(3, 7); // WAW 0-3
        assert!(t.groups().contains(&0b1001));

        let mut t = SharingTracker::new(64, 4);
        t.on_read(2, 9);
        t.on_write(0, 9); // WAR 0-2
        assert!(t.groups().contains(&0b101));
    }

    #[test]
    fn no_edge_across_intervals() {
        let mut t = SharingTracker::new(64, 4);
        t.on_write(1, 5);
        t.new_interval();
        t.on_read(2, 5); // writer stamp stale: no communication
        assert_eq!(t.groups().len(), 4);
    }

    #[test]
    fn components_merge_transitively() {
        let mut t = SharingTracker::new(64, 8);
        t.on_write(0, 1);
        t.on_read(1, 1); // 0-1
        t.on_write(1, 2);
        t.on_read(2, 2); // 1-2
        let g = t.groups();
        assert!(g.contains(&0b111));
        assert_eq!(g.len(), 6); // {0,1,2} + 5 singletons
    }

    #[test]
    fn self_access_no_edge() {
        let mut t = SharingTracker::new(64, 2);
        t.on_write(0, 3);
        t.on_read(0, 3);
        t.on_write(0, 3);
        assert_eq!(t.groups(), vec![0b01, 0b10]);
    }
}
