//! # acr-mem — memory subsystem substrate
//!
//! The ACR paper evaluates on Sniper's memory hierarchy (Table I): per-core
//! L1-I/L1-D/L2 write-back caches with LRU replacement, directory-based
//! cache coherence, and one memory controller per four cores at
//! 7.6 GB/s. None of that exists as reusable Rust infrastructure, so this
//! crate implements it:
//!
//! * [`cache`] — set-associative LRU caches (timing/state only; data values
//!   live in the functional memory image, the standard decoupled
//!   functional/timing split also used by Sniper),
//! * [`dir`] — a directory tracking per-line owner/sharer state, providing
//!   invalidations, downgrades and coherence-message accounting,
//! * [`dram`] — the functional memory image plus per-controller bandwidth
//!   and latency modelling,
//! * [`log`] — the in-memory checkpoint log: per-word *logged* bits (the
//!   paper's `log` bit, extended to word granularity per `DESIGN.md`),
//!   old-value records, and *omitted* records for values ACR excluded,
//! * [`sharing`] — inter-core communication tracking at word granularity
//!   (needed by coordinated *local* checkpointing, Section V-E),
//! * `system` — [`MemSystem`], the facade the core model talks to.
//!
//! All state-changing operations return latency in core cycles and update
//! [`MemStats`] event counters that the `acr-energy` crate converts to
//! energy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod cache;
pub mod dir;
pub mod dram;
pub mod log;
pub mod sharing;
mod stats;
mod system;

pub use addr::{LineAddr, WordAddr, LINE_BYTES, WORDS_PER_LINE};
pub use log::{record_check, LogController, LogEpoch, LogRecord, OmittedRecord, LOG_RECORD_BYTES};
pub use stats::MemStats;
pub use system::{AccessKind, CoreId, FlushStats, MemConfig, MemSystem};
