//! Memory-subsystem event counters consumed by the energy model.

/// Event counters. Every field is a monotonically increasing count; the
/// `acr-energy` crate multiplies them by per-event energies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1-D accesses that hit.
    pub l1d_hits: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// L2 accesses that hit (after an L1-D miss).
    pub l2_hits: u64,
    /// L2 misses (requests that left the tile).
    pub l2_misses: u64,
    /// Lines read from DRAM (demand fills).
    pub dram_line_reads: u64,
    /// Lines written to DRAM (dirty evictions + checkpoint flushes).
    pub dram_line_writes: u64,
    /// Cache-to-cache transfers satisfied by a remote cache.
    pub c2c_transfers: u64,
    /// Invalidation messages delivered to remote caches.
    pub invalidations: u64,
    /// Coherence protocol messages (requests, acks, data headers).
    pub coherence_messages: u64,
    /// Log records written to memory (checkpointing).
    pub log_record_writes: u64,
    /// Log records read back from memory (recovery roll-back).
    pub log_record_reads: u64,
    /// Words written to memory while restoring old values / recomputed
    /// values during recovery.
    pub recovery_word_writes: u64,
    /// Next-line prefetches issued into L2.
    pub prefetches: u64,
}

impl MemStats {
    /// Field-wise sum.
    pub fn add(&mut self, other: &MemStats) {
        self.l1d_hits += other.l1d_hits;
        self.l1d_misses += other.l1d_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.dram_line_reads += other.dram_line_reads;
        self.dram_line_writes += other.dram_line_writes;
        self.c2c_transfers += other.c2c_transfers;
        self.invalidations += other.invalidations;
        self.coherence_messages += other.coherence_messages;
        self.log_record_writes += other.log_record_writes;
        self.log_record_reads += other.log_record_reads;
        self.recovery_word_writes += other.recovery_word_writes;
        self.prefetches += other.prefetches;
    }

    /// Total data-cache accesses.
    pub fn l1d_accesses(&self) -> u64 {
        self.l1d_hits + self.l1d_misses
    }

    /// Publishes every counter into `reg` under `mem.*` keys (all values
    /// are event counts):
    ///
    /// * `mem.l1d.hits` / `mem.l1d.misses` — L1-D lookups (accesses);
    /// * `mem.l2.hits` / `mem.l2.misses` — L2 lookups (accesses);
    /// * `mem.dram.line_reads` / `mem.dram.line_writes` — DRAM traffic
    ///   (64-byte lines);
    /// * `mem.coh.c2c` / `mem.coh.invalidations` / `mem.coh.messages` —
    ///   coherence events (messages);
    /// * `mem.log.record_writes` / `mem.log.record_reads` — checkpoint log
    ///   records (16-byte records);
    /// * `mem.recovery.word_writes` — words rewritten during recovery;
    /// * `mem.prefetches` — next-line prefetches issued.
    pub fn metrics(&self, reg: &mut acr_trace::MetricsRegistry) {
        reg.set("mem.l1d.hits", self.l1d_hits);
        reg.set("mem.l1d.misses", self.l1d_misses);
        reg.set("mem.l2.hits", self.l2_hits);
        reg.set("mem.l2.misses", self.l2_misses);
        reg.set("mem.dram.line_reads", self.dram_line_reads);
        reg.set("mem.dram.line_writes", self.dram_line_writes);
        reg.set("mem.coh.c2c", self.c2c_transfers);
        reg.set("mem.coh.invalidations", self.invalidations);
        reg.set("mem.coh.messages", self.coherence_messages);
        reg.set("mem.log.record_writes", self.log_record_writes);
        reg.set("mem.log.record_reads", self.log_record_reads);
        reg.set("mem.recovery.word_writes", self.recovery_word_writes);
        reg.set("mem.prefetches", self.prefetches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_fieldwise() {
        let mut a = MemStats {
            l1d_hits: 1,
            dram_line_writes: 2,
            ..Default::default()
        };
        let b = MemStats {
            l1d_hits: 10,
            l2_misses: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.l1d_hits, 11);
        assert_eq!(a.l2_misses, 5);
        assert_eq!(a.dram_line_writes, 2);
        assert_eq!(a.l1d_accesses(), 11);
    }
}
