//! Set-associative write-back caches with LRU replacement.
//!
//! Caches here are *timing and state* structures only: they track which
//! lines are resident and dirty, but the data words live in the functional
//! memory image (`acr-mem::dram`). This is the decoupled functional/timing
//! organisation the paper's own simulator (Sniper) uses.

use crate::addr::LineAddr;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in core cycles (applies to hits; misses additionally
    /// pay the next level's latency).
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways or capacity smaller
    /// than one way of lines).
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0, "cache must have at least one way");
        let lines = self.size_bytes / crate::addr::LINE_BYTES;
        let sets = lines as usize / self.ways;
        assert!(sets > 0, "cache smaller than one way");
        sets
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    line: LineAddr,
    dirty: bool,
    /// LRU stamp: larger is more recent.
    stamp: u64,
}

impl Way {
    /// Filler for never-occupied slots of the flat way array; slots past a
    /// set's occupancy count are never read.
    const EMPTY: Way = Way {
        line: LineAddr(0),
        dirty: false,
        stamp: 0,
    };
}

/// Result of a cache lookup/fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was resident.
    Hit,
    /// The line was not resident.
    Miss,
}

/// A dirty line evicted by a fill, which must be written back to the next
/// level / memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the line was dirty (needs write-back).
    pub dirty: bool,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// Ways are stored in one flat array with a fixed per-set stride (plus a
/// per-set occupancy count) rather than per-set `Vec`s: a lookup touches a
/// single contiguous run of at most `ways` entries with no per-set heap
/// indirection. The set index is a bitmask when the set count is a power
/// of two (it is, for every Table I geometry), falling back to modulo
/// otherwise — both produce the same index, so the layout is purely a host
/// optimisation and cannot perturb simulated behaviour.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    num_sets: usize,
    /// `num_sets - 1` when the set count is a power of two, else the
    /// `usize::MAX` sentinel selecting the modulo fallback.
    set_mask: usize,
    /// Flat way storage: set `s` occupies `[s * ways, s * ways + occ[s])`.
    ways: Vec<Way>,
    /// Occupied ways per set.
    occ: Vec<u16>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(
            config.ways <= usize::from(u16::MAX),
            "associativity above {} unsupported",
            u16::MAX
        );
        Cache {
            config,
            num_sets,
            set_mask: if num_sets.is_power_of_two() {
                num_sets - 1
            } else {
                usize::MAX
            },
            ways: vec![Way::EMPTY; num_sets * config.ways],
            occ: vec![0; num_sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        let i = line.0 as usize;
        if self.set_mask != usize::MAX {
            i & self.set_mask
        } else {
            i % self.num_sets
        }
    }

    /// The occupied slots of set `s` in the flat way array.
    #[inline]
    fn set_range(&self, s: usize) -> std::ops::Range<usize> {
        let base = s * self.config.ways;
        base..base + usize::from(self.occ[s])
    }

    /// Probes for `line` without changing replacement state.
    pub fn contains(&self, line: LineAddr) -> bool {
        let r = self.set_range(self.set_index(line));
        self.ways[r].iter().any(|w| w.line == line)
    }

    /// Accesses `line`, touching LRU state. Returns hit/miss; does **not**
    /// allocate on miss (use [`Cache::fill`]).
    #[inline]
    pub fn access(&mut self, line: LineAddr, write: bool) -> LookupResult {
        self.tick += 1;
        let r = self.set_range(self.set_index(line));
        let tick = self.tick;
        if let Some(w) = self.ways[r].iter_mut().find(|w| w.line == line) {
            w.stamp = tick;
            if write {
                w.dirty = true;
            }
            self.hits += 1;
            LookupResult::Hit
        } else {
            self.misses += 1;
            LookupResult::Miss
        }
    }

    /// Allocates `line` (after a miss), evicting the LRU way if the set is
    /// full. Returns the eviction, if any.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let s = self.set_index(line);
        let base = s * self.config.ways;
        let occ = usize::from(self.occ[s]);
        let set = &mut self.ways[base..base + occ];
        debug_assert!(
            set.iter().all(|w| w.line != line),
            "fill of already-resident line"
        );
        let incoming = Way {
            line,
            dirty,
            stamp: self.tick,
        };
        if occ == self.config.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let w = set[lru];
            // Same slot reuse as `Vec::swap_remove` + `push`: the last way
            // moves into the vacated slot and the incoming line takes the
            // last slot.
            set[lru] = set[occ - 1];
            set[occ - 1] = incoming;
            Some(Eviction {
                line: w.line,
                dirty: w.dirty,
            })
        } else {
            self.ways[base + occ] = incoming;
            self.occ[s] = (occ + 1) as u16;
            None
        }
    }

    /// Invalidates `line` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let s = self.set_index(line);
        let occ = usize::from(self.occ[s]);
        let base = s * self.config.ways;
        let set = &mut self.ways[base..base + occ];
        let pos = set.iter().position(|w| w.line == line)?;
        let w = set[pos];
        set[pos] = set[occ - 1];
        self.occ[s] = (occ - 1) as u16;
        Some(w.dirty)
    }

    /// Clears the dirty bit of `line` (after a write-back that keeps the
    /// line resident clean, as in checkpoint flushes), returning `true` if
    /// the line was resident and dirty.
    pub fn clean(&mut self, line: LineAddr) -> bool {
        let r = self.set_range(self.set_index(line));
        if let Some(w) = self.ways[r].iter_mut().find(|w| w.line == line) {
            let was = w.dirty;
            w.dirty = false;
            was
        } else {
            false
        }
    }

    /// All resident dirty lines (for checkpoint flushes).
    pub fn dirty_lines(&self) -> Vec<LineAddr> {
        let mut v: Vec<LineAddr> = (0..self.num_sets)
            .flat_map(|s| self.ways[self.set_range(s)].iter())
            .filter(|w| w.dirty)
            .map(|w| w.line)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drops every line (recovery invalidates caches so stale timing state
    /// does not survive rollback).
    pub fn invalidate_all(&mut self) {
        self.occ.fill(0);
    }

    /// (hits, misses) counters.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines, 2 ways => 2 sets.
        Cache::new(CacheConfig {
            size_bytes: 4 * crate::addr::LINE_BYTES,
            ways: 2,
            latency_cycles: 4,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert_eq!(c.access(LineAddr(0), false), LookupResult::Miss);
        assert!(c.fill(LineAddr(0), false).is_none());
        assert_eq!(c.access(LineAddr(0), false), LookupResult::Hit);
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even lines, 2 sets).
        c.fill(LineAddr(0), false);
        c.fill(LineAddr(2), false);
        c.access(LineAddr(0), false); // 0 is now MRU
        let ev = c.fill(LineAddr(4), false).expect("set was full");
        assert_eq!(ev.line, LineAddr(2));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(4)));
    }

    #[test]
    fn dirty_eviction_flagged() {
        let mut c = tiny();
        c.fill(LineAddr(0), false);
        c.access(LineAddr(0), true); // dirty it
        c.fill(LineAddr(2), false); // line 2 now MRU, line 0 LRU
        let ev = c.fill(LineAddr(4), false).unwrap();
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.dirty);
        let ev = c.fill(LineAddr(6), false).unwrap();
        assert_eq!(ev.line, LineAddr(2));
        assert!(!ev.dirty);
    }

    #[test]
    fn clean_and_dirty_lines() {
        let mut c = tiny();
        c.fill(LineAddr(1), false);
        c.access(LineAddr(1), true);
        c.fill(LineAddr(0), true);
        let mut d = c.dirty_lines();
        d.sort_unstable();
        assert_eq!(d, vec![LineAddr(0), LineAddr(1)]);
        assert!(c.clean(LineAddr(1)));
        assert_eq!(c.dirty_lines(), vec![LineAddr(0)]);
        assert!(!c.clean(LineAddr(1)));
    }

    #[test]
    fn invalidate_reports_dirty() {
        let mut c = tiny();
        c.fill(LineAddr(3), true);
        assert_eq!(c.invalidate(LineAddr(3)), Some(true));
        assert_eq!(c.invalidate(LineAddr(3)), None);
        assert!(!c.contains(LineAddr(3)));
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = tiny();
        c.fill(LineAddr(0), true);
        c.fill(LineAddr(1), false);
        c.invalidate_all();
        assert!(c.dirty_lines().is_empty());
        assert!(!c.contains(LineAddr(0)));
    }
}
