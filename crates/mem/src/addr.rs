//! Word and cache-line addresses.

use std::fmt;

use acr_isa::WORD_BYTES;

/// Cache line size in bytes (64 B, standard and implied by Table I).
pub const LINE_BYTES: u64 = 64;

/// Words per cache line.
pub const WORDS_PER_LINE: u64 = LINE_BYTES / WORD_BYTES;

/// A word-aligned byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordAddr(u64);

impl WordAddr {
    /// Wraps a byte address.
    ///
    /// # Panics
    ///
    /// Panics if `byte_addr` is not word-aligned; the simulator rejects
    /// misaligned accesses before constructing a `WordAddr`.
    #[inline]
    pub fn new(byte_addr: u64) -> Self {
        assert_eq!(byte_addr % WORD_BYTES, 0, "word address must be aligned");
        WordAddr(byte_addr)
    }

    /// The byte address.
    #[inline]
    pub fn byte(self) -> u64 {
        self.0
    }

    /// Index into a word-array memory image.
    #[inline]
    pub fn word_index(self) -> usize {
        (self.0 / WORD_BYTES) as usize
    }

    /// The cache line containing this word.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Word offset within its cache line (0..[`WORDS_PER_LINE`]).
    #[inline]
    pub fn word_in_line(self) -> u64 {
        (self.0 % LINE_BYTES) / WORD_BYTES
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line index (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn byte(self) -> u64 {
        self.0 * LINE_BYTES
    }

    /// Index of the line in a flat line array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates the word addresses contained in the line.
    pub fn words(self) -> impl Iterator<Item = WordAddr> {
        (0..WORDS_PER_LINE).map(move |i| WordAddr(self.byte() + i * WORD_BYTES))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.byte())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_line_mapping() {
        let w = WordAddr::new(64 + 24);
        assert_eq!(w.line(), LineAddr(1));
        assert_eq!(w.word_in_line(), 3);
        assert_eq!(w.word_index(), 11);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn rejects_misaligned() {
        let _ = WordAddr::new(3);
    }

    #[test]
    fn line_words_roundtrip() {
        let l = LineAddr(5);
        let words: Vec<_> = l.words().collect();
        assert_eq!(words.len(), WORDS_PER_LINE as usize);
        for w in words {
            assert_eq!(w.line(), l);
        }
    }
}
