//! [`MemSystem`] — the memory-subsystem facade the core model talks to.

use crate::addr::{LineAddr, WordAddr, LINE_BYTES};
use crate::cache::{Cache, CacheConfig, LookupResult};
use crate::dir::{DirState, Directory};
use crate::dram::{DramConfig, MemImage};
use crate::sharing::SharingTracker;
use crate::stats::MemStats;
use acr_trace::{SharedSink, TraceEvent, TRACK_MEM};

/// Identifier of a core (== thread in this study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Core id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Kind of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

/// Configuration of the memory subsystem (defaults reproduce Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Per-core L1-D.
    pub l1d: CacheConfig,
    /// Per-core (private) L2.
    pub l2: CacheConfig,
    /// DRAM latency/bandwidth.
    pub dram: DramConfig,
    /// Extra cycles charged when a write must invalidate remote copies.
    pub inv_latency: u64,
    /// Latency of a cache-to-cache transfer from a remote cache.
    pub c2c_latency: u64,
    /// Next-line prefetching into L2 on demand misses (off by default —
    /// Table I does not specify a prefetcher; the `No_Ckpt`/`Ckpt`
    /// comparison is unaffected either way since both run the same
    /// hierarchy).
    pub prefetch_next_line: bool,
}

impl Default for MemConfig {
    /// Table I at 1.09 GHz: L1-D 32 KB 8-way 3.66 ns (≈4 cycles), L2
    /// 512 KB 8-way 24.77 ns (≈27 cycles), DRAM 120 ns (≈131 cycles),
    /// 7.6 GB/s per controller (≈6.97 B/cycle), 1 controller per 4 cores.
    fn default() -> Self {
        MemConfig {
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency_cycles: 4,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                latency_cycles: 27,
            },
            dram: DramConfig {
                latency_cycles: 131,
                bytes_per_cycle_per_ctrl: 6.97,
                cores_per_ctrl: 4,
            },
            inv_latency: 20,
            c2c_latency: 60,
            prefetch_next_line: false,
        }
    }
}

/// Result of a coordinated checkpoint flush.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Dirty lines written back.
    pub lines_flushed: u64,
    /// Stall cycles: DRAM latency plus the drain time of the most-loaded
    /// memory controller (flushes are bandwidth-bound; cores are stalled).
    pub stall_cycles: u64,
}

/// The full memory subsystem: per-core L1-D/L2, directory, DRAM image,
/// sharing tracker and statistics.
///
/// ```
/// use acr_mem::{CoreId, MemConfig, MemSystem, WordAddr};
///
/// let mut mem = MemSystem::new(MemConfig::default(), 2, 1 << 20);
/// let (old, _miss_latency) = mem.store(CoreId(0), WordAddr::new(64), 7);
/// assert_eq!(old, 0);
/// let (value, hit_latency) = mem.load(CoreId(0), WordAddr::new(64));
/// assert_eq!(value, 7);
/// assert_eq!(hit_latency, mem.config().l1d.latency_cycles);
/// ```
///
/// Caches are inclusive (an L1 line is also present in L2); the instruction
/// cache is not modelled as a stateful structure — the kernels' code
/// working sets fit L1-I, so fetch is charged as a fixed per-instruction
/// energy by `acr-energy` (documented in `DESIGN.md`).
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    num_cores: u32,
    image: MemImage,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    dir: Directory,
    stats: MemStats,
    sharing: Option<SharingTracker>,
    trace: SharedSink,
    /// Current simulated cycle, stamped by the core model before each
    /// access so coherence events carry a meaningful timestamp. Purely
    /// observational — never feeds back into latency.
    now: u64,
}

impl MemSystem {
    /// Creates a memory system for `num_cores` cores over `mem_bytes`
    /// bytes of data memory.
    pub fn new(cfg: MemConfig, num_cores: u32, mem_bytes: u64) -> Self {
        let image = MemImage::new(mem_bytes);
        let lines = image.num_lines();
        MemSystem {
            cfg,
            num_cores,
            image,
            l1d: (0..num_cores).map(|_| Cache::new(cfg.l1d)).collect(),
            l2: (0..num_cores).map(|_| Cache::new(cfg.l2)).collect(),
            dir: Directory::new(lines),
            stats: MemStats::default(),
            sharing: None,
            trace: SharedSink::disabled(),
            now: 0,
        }
    }

    /// Installs the trace sink events are emitted into (the simulator
    /// propagates its own sink here so all layers share one stream).
    pub fn set_trace(&mut self, trace: SharedSink) {
        self.trace = trace;
    }

    /// Stamps the current simulated cycle for subsequent event emission.
    #[inline]
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    /// The configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> u32 {
        self.num_cores
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Mutable statistics, for the checkpoint engine to charge log traffic.
    pub fn stats_mut(&mut self) -> &mut MemStats {
        &mut self.stats
    }

    /// The functional memory image.
    pub fn image(&self) -> &MemImage {
        &self.image
    }

    /// Mutable functional image (recovery restores old values through it).
    pub fn image_mut(&mut self) -> &mut MemImage {
        &mut self.image
    }

    /// Enables word-granularity sharing tracking (local checkpointing).
    pub fn enable_sharing(&mut self) {
        self.sharing = Some(SharingTracker::new(self.image.num_words(), self.num_cores));
    }

    /// The sharing tracker, if enabled.
    pub fn sharing(&self) -> Option<&SharingTracker> {
        self.sharing.as_ref()
    }

    /// Resets the sharing tracker for a new checkpoint interval.
    pub fn sharing_new_interval(&mut self) {
        if let Some(t) = &mut self.sharing {
            t.new_interval();
        }
    }

    /// Checks whether `addr` lies inside the data image.
    #[inline]
    pub fn in_bounds(&self, addr: WordAddr) -> bool {
        self.image.in_bounds(addr)
    }

    /// Performs a load: functional value plus access latency in cycles.
    #[inline]
    pub fn load(&mut self, core: CoreId, addr: WordAddr) -> (u64, u64) {
        if let Some(t) = &mut self.sharing {
            t.on_read(core.0, addr.word_index());
        }
        let lat = self.access(core, addr.line(), false);
        (self.image.read(addr), lat)
    }

    /// Performs a store: returns the overwritten (old) value plus latency.
    ///
    /// The caller (the checkpoint engine, via the simulator's store hook)
    /// decides whether the old value must be logged.
    #[inline]
    pub fn store(&mut self, core: CoreId, addr: WordAddr, value: u64) -> (u64, u64) {
        if let Some(t) = &mut self.sharing {
            t.on_write(core.0, addr.word_index());
        }
        let lat = self.access(core, addr.line(), true);
        let old = self.image.write(addr, value);
        (old, lat)
    }

    /// Invalidates remote copies so `core` can own `line` exclusively.
    /// Returns `(extra latency, data served by cache-to-cache transfer)`.
    fn acquire_exclusive(&mut self, core: CoreId, line: LineAddr) -> (u64, bool) {
        let state = self.dir.state(line);
        if let DirState::Modified(owner) = state {
            if owner == core.0 {
                return (0, false);
            }
        }
        let mut c2c = false;
        let mut lat = 0;
        match state {
            DirState::Uncached => {}
            DirState::Exclusive(owner) if owner == core.0 => {
                // Silent E -> M upgrade (MESI): no remote copies to touch.
            }
            DirState::Exclusive(owner) => {
                // Invalidate the remote clean copy; no write-back needed.
                let o = owner as usize;
                self.l1d[o].invalidate(line);
                self.l2[o].invalidate(line);
                self.stats.invalidations += 1;
                lat += self.cfg.inv_latency;
            }
            DirState::Shared(mask) => {
                let mut m = mask & !(1u64 << core.0);
                if m != 0 {
                    lat += self.cfg.inv_latency;
                }
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    // Shared copies are clean by protocol invariant.
                    self.l1d[j].invalidate(line);
                    self.l2[j].invalidate(line);
                    self.stats.invalidations += 1;
                }
            }
            DirState::Modified(owner) => {
                let o = owner as usize;
                self.l1d[o].invalidate(line);
                self.l2[o].invalidate(line);
                self.stats.invalidations += 1;
                self.stats.c2c_transfers += 1;
                lat += self.cfg.c2c_latency;
                c2c = true;
            }
        }
        let out = self.dir.write(core.0, line);
        self.stats.coherence_messages = self.dir.messages();
        debug_assert!(out.invalidations as u64 <= 64);
        if self.trace.detail() && lat > 0 {
            self.trace.emit(
                TraceEvent::instant(
                    if c2c { "mem.c2c" } else { "mem.inv" },
                    "mem",
                    TRACK_MEM,
                    self.now,
                )
                .with_arg("line", line.0)
                .with_arg("core", u64::from(core.0)),
            );
        }
        (lat, c2c)
    }

    /// Obtains a readable copy of `line` for `core`, downgrading a remote
    /// modified owner if necessary. Returns `(extra latency, served by
    /// cache-to-cache)`.
    fn acquire_shared(&mut self, core: CoreId, line: LineAddr) -> (u64, bool) {
        let state = self.dir.state(line);
        let mut lat = 0;
        let mut c2c = false;
        match state {
            DirState::Modified(owner) if owner != core.0 => {
                let o = owner as usize;
                // Owner writes back and keeps a clean copy.
                self.l1d[o].clean(line);
                self.l2[o].clean(line);
                self.stats.dram_line_writes += 1;
                self.stats.c2c_transfers += 1;
                lat += self.cfg.c2c_latency;
                c2c = true;
            }
            DirState::Exclusive(owner) if owner != core.0 => {
                // Clean copy supplied cache-to-cache, no write-back.
                self.stats.c2c_transfers += 1;
                lat += self.cfg.c2c_latency;
                c2c = true;
            }
            _ => {}
        }
        self.dir.read(core.0, line);
        self.stats.coherence_messages = self.dir.messages();
        if self.trace.detail() && c2c {
            self.trace.emit(
                TraceEvent::instant("mem.c2c", "mem", TRACK_MEM, self.now)
                    .with_arg("line", line.0)
                    .with_arg("core", u64::from(core.0)),
            );
        }
        (lat, c2c)
    }

    /// Core access path: L1-D → L2 → directory/DRAM. Returns latency.
    fn access(&mut self, core: CoreId, line: LineAddr, write: bool) -> u64 {
        let c = core.index();
        let mut lat = self.cfg.l1d.latency_cycles;
        let l1 = self.l1d[c].access(line, write);
        if l1 == LookupResult::Hit {
            self.stats.l1d_hits += 1;
            if write {
                lat += self.acquire_exclusive(core, line).0;
            }
            return lat;
        }
        self.stats.l1d_misses += 1;
        lat += self.cfg.l2.latency_cycles;
        // Prefetch on every L1 miss so a streaming access pattern keeps
        // the next line in flight (tagged next-line prefetching).
        if self.cfg.prefetch_next_line {
            self.prefetch(c, LineAddr(line.0 + 1));
        }
        let l2 = self.l2[c].access(line, false);
        if l2 == LookupResult::Hit {
            self.stats.l2_hits += 1;
            if write {
                lat += self.acquire_exclusive(core, line).0;
            }
            self.fill_l1(c, line, write);
            return lat;
        }
        self.stats.l2_misses += 1;
        // Off-tile: coherence + memory.
        let (extra, served_c2c) = if write {
            self.acquire_exclusive(core, line)
        } else {
            self.acquire_shared(core, line)
        };
        lat += extra;
        if !served_c2c {
            lat += self.cfg.dram.latency_cycles;
            self.stats.dram_line_reads += 1;
            if self.trace.detail() {
                self.trace.emit(
                    TraceEvent::instant("mem.dram.fill", "mem", TRACK_MEM, self.now)
                        .with_arg("line", line.0)
                        .with_arg("core", u64::from(core.0)),
                );
            }
        }
        self.fill_l2(c, line);
        self.fill_l1(c, line, write);
        lat
    }

    /// Next-line prefetch: fills `line` into L2 in the background (no
    /// latency charged to the demand access; DRAM energy is). Only
    /// uncached lines are prefetched — touching shared or modified lines
    /// would perturb the coherence protocol for speculation.
    fn prefetch(&mut self, c: usize, line: LineAddr) {
        if line.index() >= self.image.num_lines()
            || self.l2[c].contains(line)
            || self.dir.state(line) != DirState::Uncached
        {
            return;
        }
        self.dir.read(c as u32, line);
        self.stats.dram_line_reads += 1;
        self.stats.prefetches += 1;
        self.fill_l2(c, line);
    }

    fn fill_l1(&mut self, c: usize, line: LineAddr, dirty: bool) {
        if let Some(ev) = self.l1d[c].fill(line, dirty) {
            if ev.dirty {
                // Write the victim back into L2 (inclusive hierarchy).
                if self.l2[c].contains(ev.line) {
                    self.l2[c].access(ev.line, true);
                } else {
                    // Inclusion was broken by a concurrent L2 eviction;
                    // write back to memory directly.
                    self.stats.dram_line_writes += 1;
                    self.dir.evict(c as u32, ev.line, false);
                }
            }
        }
    }

    fn fill_l2(&mut self, c: usize, line: LineAddr) {
        if let Some(ev) = self.l2[c].fill(line, false) {
            // Back-invalidate L1 (inclusive).
            let l1_dirty = self.l1d[c].invalidate(ev.line).unwrap_or(false);
            if ev.dirty || l1_dirty {
                self.stats.dram_line_writes += 1;
            }
            self.dir.evict(c as u32, ev.line, false);
        }
    }

    /// Checkpoint flush: writes every dirty line of the cores in
    /// `cores_mask` back to memory, keeping clean copies resident
    /// (Rebound-style). Returns the bandwidth-bound stall.
    pub fn flush_dirty(&mut self, cores_mask: u64) -> FlushStats {
        let ctrls = self.cfg.dram.num_controllers(self.num_cores);
        let mut per_ctrl = vec![0u64; ctrls as usize];
        let mut lines = 0u64;
        for c in 0..self.num_cores as usize {
            if cores_mask >> c & 1 == 0 {
                continue;
            }
            let mut dirty = self.l1d[c].dirty_lines();
            dirty.extend(self.l2[c].dirty_lines());
            dirty.sort_unstable();
            dirty.dedup();
            for line in dirty {
                self.l1d[c].clean(line);
                self.l2[c].clean(line);
                self.dir.evict(c as u32, line, true);
                let h = self.cfg.dram.home(line, ctrls);
                per_ctrl[h as usize] += LINE_BYTES;
                lines += 1;
            }
        }
        self.stats.dram_line_writes += lines;
        self.stats.coherence_messages = self.dir.messages();
        let drain = per_ctrl
            .iter()
            .map(|&b| self.cfg.dram.transfer_cycles(b))
            .max()
            .unwrap_or(0);
        let stall = if lines > 0 {
            self.cfg.dram.latency_cycles + drain
        } else {
            0
        };
        if self.trace.enabled() {
            self.trace.emit(
                TraceEvent::span("mem.flush", "mem", TRACK_MEM, self.now, stall)
                    .with_arg("lines", lines)
                    .with_arg("mask", cores_mask),
            );
        }
        FlushStats {
            lines_flushed: lines,
            stall_cycles: stall,
        }
    }

    /// Stall cycles to write `bytes` of log records through the memory
    /// controllers (balanced across controllers, bandwidth-bound).
    pub fn log_write_stall(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let ctrls = u64::from(self.cfg.dram.num_controllers(self.num_cores));
        self.cfg.dram.transfer_cycles(bytes.div_ceil(ctrls))
    }

    /// Invalidates the caches of the cores in `mask` only (local-scheme
    /// recovery). Directory entries for those cores may go stale; later
    /// accesses resolve them conservatively (slight latency overcharge,
    /// never a correctness issue — data lives in the functional image).
    pub fn invalidate_cores(&mut self, mask: u64) {
        for c in 0..self.num_cores as usize {
            if mask >> c & 1 == 1 {
                self.l1d[c].invalidate_all();
                self.l2[c].invalidate_all();
            }
        }
    }

    /// Invalidates every cache and directory entry (recovery).
    pub fn invalidate_all(&mut self) {
        for c in &mut self.l1d {
            c.invalidate_all();
        }
        for c in &mut self.l2 {
            c.invalidate_all();
        }
        self.dir.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: u32) -> MemSystem {
        MemSystem::new(MemConfig::default(), cores, 1 << 20)
    }

    fn wa(i: u64) -> WordAddr {
        WordAddr::new(i * 8)
    }

    #[test]
    fn load_store_roundtrip_with_latency() {
        let mut m = sys(2);
        let (old, lat_store) = m.store(CoreId(0), wa(10), 99);
        assert_eq!(old, 0);
        assert!(lat_store >= m.config().dram.latency_cycles); // cold miss
        let (v, lat_load) = m.load(CoreId(0), wa(10));
        assert_eq!(v, 99);
        assert_eq!(lat_load, m.config().l1d.latency_cycles); // L1 hit
    }

    #[test]
    fn remote_write_invalidates_reader() {
        let mut m = sys(2);
        m.load(CoreId(0), wa(5));
        m.load(CoreId(1), wa(5));
        let inv_before = m.stats().invalidations;
        m.store(CoreId(1), wa(5), 7);
        assert_eq!(m.stats().invalidations, inv_before + 1);
        // Core 0 must now miss.
        let (_, lat) = m.load(CoreId(0), wa(5));
        assert!(lat > m.config().l1d.latency_cycles);
    }

    #[test]
    fn read_of_remote_dirty_is_c2c() {
        let mut m = sys(2);
        m.store(CoreId(0), wa(3), 1);
        let c2c_before = m.stats().c2c_transfers;
        let (v, _) = m.load(CoreId(1), wa(3));
        assert_eq!(v, 1);
        assert_eq!(m.stats().c2c_transfers, c2c_before + 1);
    }

    #[test]
    fn flush_writes_dirty_lines_and_cleans() {
        let mut m = sys(2);
        for i in 0..32 {
            m.store(CoreId(0), wa(i), i);
        }
        let f = m.flush_dirty(0b01);
        assert!(f.lines_flushed >= 4); // 32 words = 4 lines
        assert!(f.stall_cycles > 0);
        // Second flush finds nothing dirty.
        let f2 = m.flush_dirty(0b01);
        assert_eq!(f2.lines_flushed, 0);
        assert_eq!(f2.stall_cycles, 0);
        // Data still resident: next store is an L1 hit (plus silent
        // upgrade from the kept shared copy).
        let (_, lat) = m.store(CoreId(0), wa(0), 5);
        assert!(lat <= m.config().l1d.latency_cycles + m.config().inv_latency);
    }

    #[test]
    fn flush_only_selected_cores() {
        let mut m = sys(2);
        m.store(CoreId(0), wa(0), 1);
        m.store(CoreId(1), wa(100), 2);
        let f = m.flush_dirty(0b10);
        assert_eq!(f.lines_flushed, 1);
        let f = m.flush_dirty(0b01);
        assert_eq!(f.lines_flushed, 1);
    }

    #[test]
    fn capacity_evictions_write_back() {
        let mut m = sys(1);
        // Dirty far more lines than L2 holds (512KB = 8192 lines); touch
        // 10000 distinct lines.
        for i in 0..10_000u64 {
            m.store(CoreId(0), WordAddr::new(i * LINE_BYTES), i);
        }
        assert!(m.stats().dram_line_writes > 0);
        // Values survive eviction (functional image is authoritative).
        let (v, _) = m.load(CoreId(0), WordAddr::new(0));
        assert_eq!(v, 0);
        let (v, _) = m.load(CoreId(0), WordAddr::new(9_999 * LINE_BYTES));
        assert_eq!(v, 9_999);
    }

    #[test]
    fn invalidate_all_cold_misses_after() {
        let mut m = sys(1);
        m.store(CoreId(0), wa(1), 1);
        m.invalidate_all();
        let (v, lat) = m.load(CoreId(0), wa(1));
        assert_eq!(v, 1);
        assert!(lat >= m.config().dram.latency_cycles);
    }

    #[test]
    fn invalidate_cores_is_selective() {
        let mut m = sys(2);
        m.store(CoreId(0), wa(1), 1);
        m.store(CoreId(1), wa(200), 2);
        m.invalidate_cores(0b01);
        // Core 0 cold-misses, core 1 still hits.
        let (_, lat0) = m.load(CoreId(0), wa(1));
        assert!(lat0 > m.config().l1d.latency_cycles);
        let (_, lat1) = m.load(CoreId(1), wa(200));
        assert_eq!(lat1, m.config().l1d.latency_cycles);
    }

    #[test]
    fn sharing_groups_through_system() {
        let mut m = sys(4);
        m.enable_sharing();
        m.store(CoreId(0), wa(7), 1);
        m.load(CoreId(2), wa(7));
        let groups = m.sharing().unwrap().groups();
        assert!(groups.contains(&0b101));
        m.sharing_new_interval();
        assert_eq!(m.sharing().unwrap().groups().len(), 4);
    }

    #[test]
    fn log_write_stall_scales_with_bytes() {
        let m = sys(8); // 2 controllers
        assert_eq!(m.log_write_stall(0), 0);
        let s1 = m.log_write_stall(16 * 100);
        let s2 = m.log_write_stall(16 * 1000);
        assert!(s2 > s1);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;

    #[test]
    fn prefetcher_cuts_streaming_misses() {
        let on_cfg = MemConfig {
            prefetch_next_line: true,
            ..MemConfig::default()
        };
        let mut on = MemSystem::new(on_cfg, 1, 1 << 22);
        let mut off = MemSystem::new(MemConfig::default(), 1, 1 << 22);
        let mut lat_on = 0u64;
        let mut lat_off = 0u64;
        for i in 0..2000u64 {
            let a = WordAddr::new(i * 64);
            lat_on += on.load(CoreId(0), a).1;
            lat_off += off.load(CoreId(0), a).1;
        }
        assert!(on.stats().prefetches > 1000);
        assert!(
            lat_on < lat_off / 2,
            "streaming with prefetch {lat_on} should beat {lat_off}"
        );
        // Functional values unaffected.
        assert_eq!(on.load(CoreId(0), WordAddr::new(0)).0, 0);
    }

    #[test]
    fn prefetcher_respects_coherence() {
        let cfg = MemConfig {
            prefetch_next_line: true,
            ..MemConfig::default()
        };
        let mut m = MemSystem::new(cfg, 2, 1 << 20);
        // Core 1 owns line 1 dirty.
        m.store(CoreId(1), WordAddr::new(64), 5);
        // Core 0 misses line 0; next-line prefetch must NOT steal line 1.
        m.load(CoreId(0), WordAddr::new(0));
        let (v, _) = m.load(CoreId(1), WordAddr::new(64));
        assert_eq!(v, 5);
    }
}
