//! Directory-based cache coherence.
//!
//! The paper assumes "shared memory many-cores featuring directory-based
//! cache coherence" (Section II-A). We model a MESI full-map directory
//! co-located with the memory controllers: each line is uncached, held
//! *exclusive-clean* by one core (the E state — granted on a read with no
//! other sharers, so the first write upgrades silently), shared by a set
//! of cores, or modified at one core. Transactions are atomic (no
//! transient states), which is the usual simplification for
//! cycle-approximate simulators; latency costs of invalidations and
//! downgrades are charged to the requesting access and message counts are
//! recorded for the energy model.

use crate::addr::LineAddr;

/// Sharer bitmask — supports up to 64 cores (the paper evaluates ≤ 32).
pub type CoreMask = u64;

/// Per-line directory state (MESI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirState {
    /// No cached copies.
    #[default]
    Uncached,
    /// Exclusive *clean* copy at one core (granted on a sole read; the
    /// first write upgrades to [`DirState::Modified`] silently).
    Exclusive(u32),
    /// Clean copies at the cores in the mask.
    Shared(CoreMask),
    /// Exclusive modified copy at one core.
    Modified(u32),
}

/// What the directory had to do to satisfy a request; drives latency and
/// message accounting at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirOutcome {
    /// Invalidation messages sent to other cores.
    pub invalidations: u32,
    /// A modified copy at another core was written back (dirty data had to
    /// travel to memory / the requester).
    pub writeback_from_owner: bool,
    /// Data was supplied by another core's cache rather than DRAM
    /// (cache-to-cache transfer).
    pub cache_to_cache: bool,
}

/// Full-map directory over a flat line range.
#[derive(Debug, Clone)]
pub struct Directory {
    lines: Vec<DirState>,
    messages: u64,
}

impl Directory {
    /// Creates a directory covering `num_lines` lines, all uncached.
    pub fn new(num_lines: usize) -> Self {
        Directory {
            lines: vec![DirState::Uncached; num_lines],
            messages: 0,
        }
    }

    /// Current state of `line`.
    pub fn state(&self, line: LineAddr) -> DirState {
        self.lines[line.index()]
    }

    /// Total coherence messages exchanged so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Core `core` requests read access to `line`.
    pub fn read(&mut self, core: u32, line: LineAddr) -> DirOutcome {
        let mut out = DirOutcome::default();
        let st = &mut self.lines[line.index()];
        match *st {
            DirState::Uncached => {
                // Sole reader: grant the E state (MESI).
                *st = DirState::Exclusive(core);
                self.messages += 2; // request + data
            }
            DirState::Exclusive(owner) if owner == core => {
                // Silent: already held exclusively.
            }
            DirState::Exclusive(owner) => {
                // Clean copy elsewhere: both share, no write-back needed.
                *st = DirState::Shared((1 << owner) | (1 << core));
                out.cache_to_cache = true;
                self.messages += 3; // req, fwd, data
            }
            DirState::Shared(mask) => {
                *st = DirState::Shared(mask | (1 << core));
                self.messages += 2;
            }
            DirState::Modified(owner) if owner == core => {
                // Silent: already owned.
            }
            DirState::Modified(owner) => {
                // Downgrade the owner: write back dirty data, both share.
                *st = DirState::Shared((1 << owner) | (1 << core));
                out.writeback_from_owner = true;
                out.cache_to_cache = true;
                self.messages += 4; // req, fwd, wb, data
            }
        }
        out
    }

    /// Core `core` requests write (exclusive) access to `line`.
    pub fn write(&mut self, core: u32, line: LineAddr) -> DirOutcome {
        let mut out = DirOutcome::default();
        let st = &mut self.lines[line.index()];
        match *st {
            DirState::Uncached => {
                self.messages += 2;
            }
            DirState::Exclusive(owner) if owner == core => {
                // The MESI payoff: silent E -> M upgrade, zero messages.
            }
            DirState::Exclusive(_) => {
                // Invalidate the clean remote copy; no write-back needed.
                out.invalidations = 1;
                self.messages += 3;
            }
            DirState::Shared(mask) => {
                let others = mask & !(1 << core);
                out.invalidations = others.count_ones();
                self.messages += 2 + 2 * u64::from(out.invalidations);
            }
            DirState::Modified(owner) if owner == core => {
                // Silent upgrade hit.
                return out;
            }
            DirState::Modified(_) => {
                out.writeback_from_owner = true;
                out.cache_to_cache = true;
                out.invalidations = 1;
                self.messages += 4;
            }
        }
        *st = DirState::Modified(core);
        out
    }

    /// Core `core` evicts its copy of `line` (capacity eviction or
    /// checkpoint-flush downgrade to clean-shared).
    ///
    /// `keep_shared` models the Rebound-style checkpoint flush, which
    /// writes dirty data back while *keeping clean copies in the cache*.
    pub fn evict(&mut self, core: u32, line: LineAddr, keep_shared: bool) {
        let st = &mut self.lines[line.index()];
        match *st {
            DirState::Modified(owner) if owner == core => {
                *st = if keep_shared {
                    DirState::Shared(1 << core)
                } else {
                    DirState::Uncached
                };
                self.messages += 1;
            }
            DirState::Exclusive(owner) if owner == core && !keep_shared => {
                *st = DirState::Uncached;
                self.messages += 1;
            }
            DirState::Shared(mask) if !keep_shared => {
                let m = mask & !(1 << core);
                *st = if m == 0 {
                    DirState::Uncached
                } else {
                    DirState::Shared(m)
                };
                self.messages += 1;
            }
            _ => {}
        }
    }

    /// Drops every entry (recovery invalidates all caches).
    pub fn reset(&mut self) {
        for l in &mut self.lines {
            *l = DirState::Uncached;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sole_read_grants_exclusive_second_read_shares() {
        let mut d = Directory::new(16);
        d.read(0, LineAddr(3));
        assert_eq!(d.state(LineAddr(3)), DirState::Exclusive(0));
        let out = d.read(1, LineAddr(3));
        assert!(out.cache_to_cache);
        assert!(!out.writeback_from_owner, "clean copy needs no write-back");
        assert_eq!(d.state(LineAddr(3)), DirState::Shared(0b11));
    }

    #[test]
    fn exclusive_to_modified_is_silent() {
        let mut d = Directory::new(16);
        d.read(2, LineAddr(4));
        let m0 = d.messages();
        let out = d.write(2, LineAddr(4));
        assert_eq!(out, DirOutcome::default());
        assert_eq!(d.messages(), m0, "E->M upgrade must be message-free");
        assert_eq!(d.state(LineAddr(4)), DirState::Modified(2));
    }

    #[test]
    fn remote_exclusive_write_invalidates_cleanly() {
        let mut d = Directory::new(16);
        d.read(0, LineAddr(6));
        let out = d.write(1, LineAddr(6));
        assert_eq!(out.invalidations, 1);
        assert!(!out.writeback_from_owner);
        assert_eq!(d.state(LineAddr(6)), DirState::Modified(1));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new(16);
        d.read(0, LineAddr(1));
        d.read(1, LineAddr(1));
        d.read(2, LineAddr(1));
        let out = d.write(1, LineAddr(1));
        assert_eq!(out.invalidations, 2);
        assert_eq!(d.state(LineAddr(1)), DirState::Modified(1));
    }

    #[test]
    fn read_of_modified_downgrades_owner() {
        let mut d = Directory::new(16);
        d.write(0, LineAddr(2));
        let out = d.read(1, LineAddr(2));
        assert!(out.writeback_from_owner);
        assert!(out.cache_to_cache);
        assert_eq!(d.state(LineAddr(2)), DirState::Shared(0b11));
    }

    #[test]
    fn write_of_remote_modified_transfers_ownership() {
        let mut d = Directory::new(16);
        d.write(0, LineAddr(2));
        let out = d.write(1, LineAddr(2));
        assert!(out.writeback_from_owner);
        assert_eq!(out.invalidations, 1);
        assert_eq!(d.state(LineAddr(2)), DirState::Modified(1));
    }

    #[test]
    fn silent_owner_hits() {
        let mut d = Directory::new(16);
        d.write(0, LineAddr(5));
        let m0 = d.messages();
        let out = d.read(0, LineAddr(5));
        assert_eq!(out, DirOutcome::default());
        let out = d.write(0, LineAddr(5));
        assert_eq!(out, DirOutcome::default());
        assert_eq!(d.messages(), m0);
    }

    #[test]
    fn flush_downgrade_keeps_shared_copy() {
        let mut d = Directory::new(16);
        d.write(3, LineAddr(7));
        d.evict(3, LineAddr(7), true);
        assert_eq!(d.state(LineAddr(7)), DirState::Shared(1 << 3));
        // A later write by the same core must now send an upgrade (not
        // silent), matching the extra traffic Rebound-style flushes incur.
        let out = d.write(3, LineAddr(7));
        assert_eq!(out.invalidations, 0);
        assert_eq!(d.state(LineAddr(7)), DirState::Modified(3));
    }

    #[test]
    fn capacity_eviction_uncaches() {
        let mut d = Directory::new(16);
        d.write(0, LineAddr(9));
        d.evict(0, LineAddr(9), false);
        assert_eq!(d.state(LineAddr(9)), DirState::Uncached);
    }
}
