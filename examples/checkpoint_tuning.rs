//! Tune the checkpointing frequency of a workload under an expected error
//! rate: sweep checkpoint counts, measure time/energy/EDP with and without
//! ACR, and report the best operating points.
//!
//! This mirrors the trade-off of Equations 1–3 of the paper: more frequent
//! checkpoints cost more up front but waste less work per recovery — and
//! ACR shifts the whole curve by making each checkpoint cheaper.
//!
//! ```sh
//! cargo run --release --example checkpoint_tuning [bench] [errors]
//! ```

use acr::{Experiment, ExperimentError, ExperimentSpec};
use acr_workloads::{generate, Benchmark, WorkloadConfig};

fn main() -> Result<(), ExperimentError> {
    let bench = std::env::args()
        .nth(1)
        .and_then(|s| Benchmark::from_name(&s))
        .unwrap_or(Benchmark::Lu);
    let errors: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    let program = generate(
        bench,
        &WorkloadConfig::default().with_threads(8).with_scale(0.5),
    );
    println!("tuning {bench} under {errors} expected errors per execution\n");
    println!(
        "{:>6} {:>12} {:>12} {:>13} {:>13}",
        "ckpts", "Ckpt cycles", "ReCkpt cyc", "Ckpt EDP", "ReCkpt EDP"
    );

    let mut best_ckpt: Option<(u32, f64)> = None;
    let mut best_reckpt: Option<(u32, f64)> = None;
    for n in [5u32, 10, 25, 50, 75, 100] {
        let spec = ExperimentSpec::default()
            .with_cores(8)
            .with_threshold(bench.default_threshold())
            .with_checkpoints(n);
        let mut exp = Experiment::new(program.clone(), spec)?;
        let c = exp.run_ckpt(errors)?;
        let r = exp.run_reckpt(errors)?;
        println!(
            "{:>6} {:>12} {:>12} {:>13.4e} {:>13.4e}",
            n, c.cycles, r.cycles, c.edp, r.edp
        );
        if best_ckpt.map(|(_, e)| c.edp < e).unwrap_or(true) {
            best_ckpt = Some((n, c.edp));
        }
        if best_reckpt.map(|(_, e)| r.edp < e).unwrap_or(true) {
            best_reckpt = Some((n, r.edp));
        }
    }
    let (cn, ce) = best_ckpt.expect("swept");
    let (rn, re) = best_reckpt.expect("swept");
    println!(
        "\nbest EDP: plain checkpointing at {cn} checkpoints ({ce:.4e} J·s); \
         ACR at {rn} checkpoints ({re:.4e} J·s, {:.1}% better than the plain optimum)",
        100.0 * (ce - re) / ce
    );

    // Compare against the analytic Young/Daly recommendation computed from
    // measured per-checkpoint stalls (Section IV: the paper adjusts
    // frequency to expected error rates).
    let spec = ExperimentSpec::default()
        .with_cores(8)
        .with_threshold(bench.default_threshold())
        .with_checkpoints(25);
    let mut exp = Experiment::new(program, spec)?;
    let no = exp.run_no_ckpt()?;
    for (label, run) in [("plain", exp.run_ckpt(0)?), ("ACR", exp.run_reckpt(0)?)] {
        let rep = run.report.as_ref().expect("report");
        let per_ckpt = rep.checkpoint_stall_cycles / rep.checkpoints_taken.max(1);
        let n =
            acr_ckpt::frequency::recommended_checkpoints(no.cycles, per_ckpt, f64::from(errors));
        println!(
            "Young/Daly for {label}: per-checkpoint cost {per_ckpt} cycles -> {n} checkpoints"
        );
    }
    Ok(())
}
