//! Inspect what the ACR compiler pass does to a NAS-like kernel: slice
//! length histograms, rejection reasons, coverage vs threshold, binary
//! size overhead, and a disassembled example Slice.
//!
//! ```sh
//! cargo run --release --example slice_explorer [bench]
//! ```

use acr_slicer::{instrument, SlicerConfig};
use acr_workloads::{generate, Benchmark, WorkloadConfig};

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|s| Benchmark::from_name(&s))
        .unwrap_or(Benchmark::Bt);
    let program = generate(
        bench,
        &WorkloadConfig::default().with_threads(4).with_scale(0.5),
    );
    let mix = program.instruction_mix();
    println!(
        "benchmark {bench}: {} threads, {} static instructions, {} B data image",
        program.num_threads(),
        program.static_len(),
        program.mem_bytes()
    );
    println!(
        "static mix: {} arith, {} loads, {} stores ({:.1}% stores), {} branches",
        mix.arith,
        mix.loads,
        mix.stores,
        100.0 * mix.store_fraction(),
        mix.branches
    );

    println!("\ncoverage vs Slice-length threshold (static stores):");
    println!(
        "{:>9} {:>8} {:>10} {:>12}",
        "threshold", "sliced", "coverage", "binary_ovhd"
    );
    for threshold in [5usize, 10, 20, 30, 40, 50] {
        let (ip, stats) = instrument(&program, &SlicerConfig { threshold });
        println!(
            "{:>9} {:>8} {:>9.1}% {:>11.2}%",
            threshold,
            stats.sliced_stores,
            100.0 * stats.static_coverage(),
            100.0 * stats.binary_overhead(ip.static_len()),
        );
    }

    let (ip, stats) = instrument(
        &program,
        &SlicerConfig {
            threshold: bench.default_threshold(),
        },
    );
    println!(
        "\nat the paper's threshold ({}) — {} unique Slices, {} embedded instructions:",
        bench.default_threshold(),
        stats.unique_slices,
        stats.embedded_slice_instrs
    );
    println!("  slice length histogram: {:?}", stats.length_histogram);
    println!(
        "  rejections: {} too long, {} no arithmetic (pure copies), {} inputs clobbered, {} too many inputs",
        stats.rejected_too_long,
        stats.rejected_no_arith,
        stats.rejected_input_clobbered,
        stats.rejected_too_many_inputs,
    );

    if let Some(slice) = ip.slices().iter().max_by_key(|s| s.len()) {
        println!(
            "\nlongest embedded Slice ({} instructions, {} operand-buffer inputs):",
            slice.len(),
            slice.num_inputs
        );
        for (i, instr) in slice.instrs.iter().enumerate() {
            println!("  t{i:<3} <- {:?} {:?}, {:?}", instr.op, instr.a, instr.b);
        }
        let demo_inputs: Vec<u64> = (0..slice.num_inputs).map(|i| 10 + u64::from(i)).collect();
        println!(
            "  executing it over inputs {:?} recomputes {:#x}",
            demo_inputs,
            slice.execute(&demo_inputs).expect("valid slice"),
        );
    }
}
