//! Write a kernel in the textual assembly, then push it through the whole
//! ACR pipeline: assemble → slice → checkpoint with an injected error →
//! recover with recomputation.
//!
//! ```sh
//! cargo run --release --example asm_kernel
//! ```

use acr::{Experiment, ExperimentSpec};
use acr_isa::asm::{assemble, disassemble};

/// A fixed-point "compound interest" kernel: 16 sweeps re-valuing 256
/// accounts. Each stored balance is a short arithmetic function of the
/// account index and sweep — prime ACR material.
const SOURCE: &str = r"
    mem 65536
    thread 0
      imm  r10, 4096        ; balances base
      imm  r1, 0            ; sweep
      imm  r2, 16
    sweep:
      bge  r1, r2, done
      imm  r3, 0            ; account index
      imm  r4, 256
    account:
      bge  r3, r4, next_sweep
      ; balance = (index * 1009) xor (sweep * 31) + 100000
      muli r5, r3, 1009
      muli r6, r1, 31
      xor  r5, r5, r6
      addi r5, r5, 100000
      muli r7, r3, 8
      add  r8, r10, r7
      st   r5, [r8+0]
      addi r3, r3, 1
      jmp  account
    next_sweep:
      addi r1, r1, 1
      jmp  sweep
    done:
      halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(SOURCE)?;
    program.validate()?;
    println!(
        "assembled {} instructions; first lines of the disassembly:",
        program.static_len()
    );
    for line in disassemble(&program).lines().take(8) {
        println!("  {line}");
    }

    let spec = ExperimentSpec::default()
        .with_cores(1)
        .with_checkpoints(8)
        .with_oracle(true);
    let mut exp = Experiment::new(program, spec)?;
    {
        let (_, stats) = exp.instrumented();
        println!(
            "\nslicer covered {}/{} stores (slice lengths {:?})",
            stats.sliced_stores, stats.static_stores, stats.length_histogram
        );
    }

    let ckpt = exp.run_ckpt(1)?;
    let reckpt = exp.run_reckpt(1)?;
    println!(
        "\nCkpt_E:   {:>8} cycles, {:>7} B checkpointed",
        ckpt.cycles,
        ckpt.checkpoint_bytes()
    );
    println!(
        "ReCkpt_E: {:>8} cycles, {:>7} B checkpointed ({:.1}% smaller)",
        reckpt.cycles,
        reckpt.checkpoint_bytes(),
        reckpt
            .report
            .as_ref()
            .expect("report")
            .overall_reduction_pct()
    );
    let rec = &reckpt.report.as_ref().expect("report").recoveries[0];
    println!(
        "recovery recomputed {} balances instead of reading them from the checkpoint",
        rec.recomputed_values
    );
    Ok(())
}
