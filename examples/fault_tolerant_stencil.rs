//! A user-written 1-D heat-diffusion stencil made fault-tolerant with ACR.
//!
//! This example shows the full pipeline a downstream user would follow:
//! write a kernel against `acr-isa`, let the `acr-slicer` compiler pass
//! embed recomputation Slices, and run it under the BER engine with
//! injected errors — watching recovery recompute omitted values instead of
//! reading them from checkpoints.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_stencil
//! ```

use acr::{Experiment, ExperimentError, ExperimentSpec};
use acr_isa::{AluOp, ProgramBuilder, Reg};

/// Grid cells per thread.
const CELLS: u64 = 768;
/// Time steps.
const STEPS: u64 = 24;

fn main() -> Result<(), ExperimentError> {
    let threads = 4u32;
    let mut b = ProgramBuilder::new(threads as usize);
    b.set_mem_bytes(1 << 22);

    for t in 0..threads {
        // Double-buffered grid: read `src`, write `dst`, swap by sweep
        // parity. Cells are integers (fixed-point temperature).
        let src = 4096 + u64::from(t) * 131072;
        let dst = src + CELLS * 8;
        let tb = b.thread(t);
        tb.imm(Reg(10), src);
        tb.imm(Reg(11), dst);

        // Seed the grid: cell i starts at i * 7 + 100.
        let init = tb.begin_loop(Reg(3), Reg(4), CELLS);
        tb.alui(AluOp::Mul, Reg(5), Reg(3), 7);
        tb.alui(AluOp::Add, Reg(5), Reg(5), 100);
        tb.alui(AluOp::Mul, Reg(6), Reg(3), 8);
        tb.alu(AluOp::Add, Reg(7), Reg(10), Reg(6));
        tb.store(Reg(5), Reg(7), 0);
        tb.end_loop(init);

        let steps = tb.begin_loop(Reg(1), Reg(2), STEPS);
        // Interior update: dst[i] = (src[i-1] + 2*src[i] + src[i+1]) / 4.
        let sweep = tb.begin_loop(Reg(3), Reg(4), CELLS - 2);
        tb.alui(AluOp::Mul, Reg(6), Reg(3), 8);
        tb.alu(AluOp::Add, Reg(7), Reg(10), Reg(6)); // &src[i-1]... base+i*8
        tb.load(Reg(20), Reg(7), 0); // src[i-1]
        tb.load(Reg(21), Reg(7), 8); // src[i]
        tb.load(Reg(23), Reg(7), 16); // src[i+1]
                                      // value = (a + 2b + c) / 4 — a pure arithmetic producer chain, so
                                      // the slicer gives this store a Slice with the three loads as
                                      // operand-buffer inputs (Fig. 3(d) of the paper).
        tb.alui(AluOp::Mul, Reg(22), Reg(21), 2);
        tb.alu(AluOp::Add, Reg(22), Reg(22), Reg(20));
        tb.alu(AluOp::Add, Reg(22), Reg(22), Reg(23));
        tb.alui(AluOp::Shr, Reg(22), Reg(22), 2);
        tb.alu(AluOp::Add, Reg(8), Reg(11), Reg(6));
        tb.store(Reg(22), Reg(8), 8); // dst[i]
        tb.end_loop(sweep);
        // Swap buffers.
        tb.alu(AluOp::Xor, Reg(9), Reg(10), Reg(11));
        tb.alu(AluOp::Xor, Reg(10), Reg(10), Reg(9));
        tb.alu(AluOp::Xor, Reg(11), Reg(11), Reg(9));
        tb.end_loop(steps);
        tb.barrier();
        tb.halt();
    }
    let program = b.build();

    let spec = ExperimentSpec::default()
        .with_cores(threads)
        .with_checkpoints(12)
        .with_threshold(10)
        .with_oracle(true);
    let mut exp = Experiment::new(program, spec)?;

    // How much of the kernel did the compiler pass cover?
    {
        let (_, stats) = exp.instrumented();
        println!(
            "slicer: {}/{} static stores sliceable ({:.0}% — the init and stencil stores), \
             {} unique Slices embedded",
            stats.sliced_stores,
            stats.static_stores,
            100.0 * stats.static_coverage(),
            stats.unique_slices,
        );
    }

    let no = exp.run_no_ckpt()?;
    println!("\n{:<11} {:>12} {:>10}", "config", "cycles", "overhead%");
    println!("{:<11} {:>12} {:>10}", no.label, no.cycles, "-");
    for errors in [0u32, 2] {
        let ckpt = exp.run_ckpt(errors)?;
        let reckpt = exp.run_reckpt(errors)?;
        for r in [&ckpt, &reckpt] {
            println!(
                "{:<11} {:>12} {:>10.2}",
                r.label,
                r.cycles,
                r.time_overhead_pct(&no)
            );
        }
        if errors > 0 {
            let rep = reckpt.report.as_ref().expect("report");
            for (i, rec) in rep.recoveries.iter().enumerate() {
                println!(
                    "  recovery {}: rolled back to checkpoint {}, restored {} logged values, \
                     recomputed {} omitted values ({} Slice ALU ops), wasted {} cycles",
                    i,
                    rec.safe_epoch,
                    rec.restored_records,
                    rec.recomputed_values,
                    rec.recompute_alu_ops,
                    rec.waste_cycles,
                );
            }
        }
    }
    println!("\nevery recovery was verified word-for-word against a shadow snapshot (oracle on)");
    Ok(())
}
