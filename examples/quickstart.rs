//! Quickstart: build a tiny kernel, run the paper's three headline
//! configurations, and print what ACR saves.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use acr::{Experiment, ExperimentError, ExperimentSpec};
use acr_isa::{AluOp, ProgramBuilder, Reg};

fn main() -> Result<(), ExperimentError> {
    // A little iterative kernel: 12 sweeps over 512 words, each storing
    // value = (i * 13) ^ sweep — recomputable from two loop counters.
    let mut b = ProgramBuilder::new(2);
    b.set_mem_bytes(1 << 20);
    for t in 0..2 {
        let base = 4096 + u64::from(t) * 65536;
        let tb = b.thread(t);
        tb.imm(Reg(10), base);
        let sweeps = tb.begin_loop(Reg(1), Reg(2), 12);
        let inner = tb.begin_loop(Reg(3), Reg(4), 512);
        tb.alui(AluOp::Mul, Reg(5), Reg(3), 13);
        tb.alu(AluOp::Xor, Reg(5), Reg(5), Reg(1));
        tb.alui(AluOp::Mul, Reg(6), Reg(3), 8);
        tb.alu(AluOp::Add, Reg(7), Reg(10), Reg(6));
        tb.store(Reg(5), Reg(7), 0);
        tb.end_loop(inner);
        tb.end_loop(sweeps);
        tb.halt();
    }
    let program = b.build();

    let spec = ExperimentSpec::default()
        .with_cores(2)
        .with_checkpoints(10)
        .with_oracle(true); // verify every recovery against a shadow image
    let mut exp = Experiment::new(program, spec)?;

    let no_ckpt = exp.run_no_ckpt()?;
    let ckpt = exp.run_ckpt(1)?; // one injected error
    let reckpt = exp.run_reckpt(1)?;

    println!("configuration      cycles      energy(J)     checkpointed");
    for r in [&no_ckpt, &ckpt, &reckpt] {
        println!(
            "{:<12} {:>12} {:>14.6e} {:>12} B",
            r.label,
            r.cycles,
            r.energy.total_joules(),
            r.checkpoint_bytes(),
        );
    }
    let t_red = 100.0 * (ckpt.cycles as f64 - reckpt.cycles as f64) / ckpt.cycles as f64;
    let report = reckpt.report.as_ref().expect("reckpt reports");
    println!();
    println!(
        "ACR omitted {} of {} first-updates from checkpoints ({:.1}% size reduction),",
        report.intervals.iter().map(|i| i.omitted).sum::<u64>(),
        report
            .intervals
            .iter()
            .map(|i| i.records + i.omitted)
            .sum::<u64>(),
        report.overall_reduction_pct(),
    );
    println!(
        "recomputed {} values during recovery, and cut execution time by {:.1}% vs Ckpt_E.",
        report
            .recoveries
            .iter()
            .map(|r| r.recomputed_values)
            .sum::<u64>(),
        t_red,
    );
    Ok(())
}
