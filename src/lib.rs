//! # acr-repro — workspace facade
//!
//! Re-exports every crate of the ACR (Amnesic Checkpointing and Recovery,
//! HPCA 2020) reproduction so examples and integration tests can use a
//! single dependency. See the `acr` crate for the main entry points.

#![forbid(unsafe_code)]

pub use acr;
pub use acr_ckpt;
pub use acr_energy;
pub use acr_isa;
pub use acr_mem;
pub use acr_sim;
pub use acr_slicer;
pub use acr_workloads;
