//! `acr_cli` — command-line front end for the ACR reproduction.
//!
//! The `inject` subcommand runs a deterministic fault-injection and
//! recovery-verification campaign over the bundled workloads: same seed,
//! byte-identical output. The `trace` subcommand runs one ACR execution
//! under injected recoverable faults with the trace sink attached and
//! exports a Chrome `trace_event` JSON (loadable in Perfetto /
//! `chrome://tracing`) plus optional interval-sampled metrics as JSONL.
//! The `profile` subcommand runs the same faulted execution with the
//! attribution profiler and the omission-decision ledger attached and
//! exports a collapsed-stack flamegraph (speedscope / inferno) plus a
//! ledger text report — byte-identical for a given seed.
//!
//! Host-performance observability rides alongside: `inject`/`trace`/
//! `profile` emit a machine-readable run manifest behind `--manifest-out`
//! (sim-deterministic hashes + host timings), `bench` times the reference
//! campaign over warmup + N repetitions into `BENCH_<name>.json`, and
//! `diff` compares two manifests — byte-exact on the sim section,
//! tolerance-band on host timings — exiting nonzero on a regression.

use std::fmt::Write as _;
use std::process::ExitCode;

use acr::{
    run_campaign_sweep, run_faulted_sweep, CampaignSweepItem, Experiment, ExperimentError,
    ExperimentSpec, FaultedSweepItem,
};
use acr_ckpt::{
    default_models, default_resilience, fault_from_json, fault_to_json, run_soak, CampaignConfig,
    CampaignError, CaseOutcome, CkptError, OmitReason, ParallelRunner, Scheme, ShrinkConfig,
    SoakCursor, SoakGrid, SoakModel, SoakResilience, POSTMORTEM_SCHEMA, REPRO_SCHEMA,
};
use acr_mem::CoreId;
use acr_sim::{Fault, FaultKind, FaultKindSet, FaultStorm};
use acr_trace::{
    chrome_trace_json, diff_manifests, fnv1a, merge_loads, parse_json, BenchStats, DiffOptions,
    Fnv1a, HostPerf, Json, Manifest, MetricsRegistry, Stopwatch, TraceEvent, WorkerLoad,
    TRACK_ENGINE,
};
use acr_workloads::{generate, Benchmark, WorkloadConfig};

const USAGE: &str = "\
acr_cli — ACR (Amnesic Checkpointing and Recovery) reproduction driver

USAGE:
    acr_cli inject [OPTIONS]     run a deterministic fault-injection campaign
    acr_cli trace [OPTIONS]      trace one ACR run under injected faults
    acr_cli profile [OPTIONS]    attribution-profile one ACR run: per-PC cycle
                                 accounting, omission-decision ledger,
                                 flamegraph export
    acr_cli bench [OPTIONS]      time the reference campaign over warmup +
                                 N repetitions; write a BENCH_<name>.json
                                 manifest with median/MAD/min host stats
    acr_cli diff BASE CAND [OPTIONS]
                                 compare two run manifests: byte-exact on
                                 sim hashes and the metrics digest,
                                 tolerance-band on host timings; exit 1 on
                                 any regression
    acr_cli explain BUNDLE.json  render a postmortem bundle as a human-
                                 readable triage report: fault chain,
                                 invariant tallies, escalation ladder,
                                 merged flight-recorder timeline, and the
                                 probable-cause classification
    acr_cli soak [OPTIONS]       run a long-horizon randomized soak: chunked
                                 campaigns round-robin over a workload x
                                 fault-model x resilience grid, every case
                                 classified recovered/due/sdc/hang, bounded
                                 by --cases / --budget-secs and resumable
                                 from a --cursor file
    acr_cli shrink [OPTIONS]     delta-debug one failing fault case down to
                                 a minimal reproducer with the identical
                                 postmortem trigger; writes an acr.repro.v1
                                 JSON replayable with --replay
    acr_cli workloads            list the bundled workloads
    acr_cli help                 show this message

INJECT OPTIONS:
    --seed N          campaign seed (default 42)
    --faults N        total faults, split across the workloads (default 1000)
    --workloads LIST  comma-separated workload names (default is,cg,mg)
    --threads N       cores == threads (default 4)
    --scale F         workload scale factor (default 0.05)
    --checkpoints N   checkpoints per nominal run (default 12)
    --latency F       detection latency / checkpoint period (default 0.5)
    --kinds SET       all | recoverable | adversarial | comma list of
                      reg,pc,mem,burst,stuck,crash (default recoverable)
    --storm G,B       cluster injection points into seeded Poisson bursts:
                      mean gap G instructions between storms, up to B
                      faults per storm (default off — uniform placement)
    --watchdog-budget N
                      recovery-watchdog cycle budget: a single recovery
                      escalation exceeding N cycles is aborted into a
                      `hang` postmortem (default 0 = off)
    --policy P        acr | baseline (default acr)
    --scheme S        global | local (default global)
    --csv DIR         also write per-case CSVs into DIR
    --metrics-out F   write the fault-free baseline's interval metrics
                      samples to F as JSONL
    --sample-interval N
                      metrics sampling interval in cycles (default 5000
                      when --metrics-out is given, else off)
    --recovery-faults additionally strike each case's first recovery with
                      a deterministic recovery-window fault (torn record,
                      flipped restored word, corrupt replay, crash
                      mid-restore, torn commit) and report the engine's
                      escalation histogram (global scheme only)
    --generations N   checkpoint generations retained as rollback
                      fallbacks (default 1; at least 2 with
                      --recovery-faults)
    --jobs N          worker threads sharding the campaign (0 = auto:
                      ACR_JOBS env, else available parallelism; default
                      auto). Output is byte-identical for every value
    --progress        print one line per fault case; lines are buffered
                      per shard and flushed in case order, so the output
                      is also jobs-invariant
    --manifest-out F  write a run manifest (JSON): config, per-workload
                      content hashes + combined, metrics digest, host
                      timings under host.* — the sim section is identical
                      for every --jobs value
    --postmortem-dir D
                      write one postmortem bundle (JSON) per failed case
                      — divergence, invariant breach, escalation
                      exhaustion, or abort — into D as
                      postmortem.<workload>.case<NNNN>.json. Bundles are
                      byte-identical for a given seed and every --jobs
                      value; feed them to `acr_cli explain`
    --print-metrics   print the merged campaign metrics registry as an
                      aligned key/value/unit table after the totals

TRACE OPTIONS:
    --workload W      workload(s) to trace, comma-separated (default cg);
                      with several, each output file gains a .<name>
                      suffix before its extension
    --jobs N          worker threads across workloads (0 = auto: ACR_JOBS
                      env, else available parallelism; default auto)
    --out FILE        Chrome trace_event JSON output (default run.trace.json)
    --metrics-out F   also write the metrics samples to F as JSONL
    --sample-interval N
                      metrics sampling interval in cycles (default 5000)
    --seed N          fault-placement seed (default 42)
    --faults N        recoverable register faults to inject (default 1)
    --threads N       cores == threads (default 2)
    --scale F         workload scale factor (default 0.05)
    --checkpoints N   checkpoints per nominal run (default 12)
    --scheme S        global | local (default global)
    --detail FLAG     on | off — per-store/assoc/miss instants (default off)
    --print-metrics   print the final metrics sample per workload as an
                      aligned key/value/unit table
    --manifest-out F  write a run manifest (JSON): config, per-workload
                      trace-artifact hashes, metrics digest, host timings

PROFILE OPTIONS:
    --workload W      workload(s) to profile, comma-separated (default
                      cg); with several, each output file gains a .<name>
                      suffix before its extension
    --jobs N          worker threads across workloads (0 = auto: ACR_JOBS
                      env, else available parallelism; default auto)
    --seed N          fault-placement seed (default 42)
    --faults N        recoverable register faults to inject (default 1)
    --threads N       cores == threads (default 2)
    --scale F         workload scale factor (default 0.05)
    --checkpoints N   checkpoints per nominal run (default 12)
    --scheme S        global | local (default global)
    --flame-out F     collapsed-stack flamegraph output, loadable in
                      speedscope / inferno (default run.folded)
    --ledger-out F    omission-decision ledger text output
                      (default run.ledger.txt)
    --trace-out F     also write a Chrome trace with the profile and
                      ledger counter tracks appended
    --top N           hottest attribution sites to print (default 10)
    --manifest-out F  write a run manifest (JSON): config, flamegraph and
                      ledger artifact hashes, host timings

BENCH OPTIONS (plus every INJECT option; --faults defaults to 200 — the
reference campaign whose hashes the golden tests pin):
    --name NAME       benchmark name; output defaults to BENCH_<name>.json
                      (default ref)
    --reps N          timed repetitions (default 5)
    --warmup N        untimed warmup repetitions (default 1)
    --out FILE        output path override

DIFF OPTIONS:
    --tolerance-pct F allowed host-timing growth before the candidate
                      counts as a regression (default 20)
    --host-gate FLAG  on | off | tput — whether host performance fails
                      the diff (default on; CI uses off for hash checks,
                      where shared runners make wall time report-only).
                      `tput` gates on host.tput.cycles_per_sec instead of
                      wall time: a throughput drop beyond the tolerance
                      fails, growth never does. Sim mismatches always
                      fail regardless

SOAK OPTIONS:
    --workloads LIST  comma-separated workload names (default is,cg)
    --cases N         stop once the cursor's total finished cases reach N
                      — counts resumed history, so a budget spans
                      invocations (default 500)
    --budget-secs N   also stop after N seconds of wall clock (checked
                      between chunks; the wall clock can stop a soak but
                      never changes what a chunk computes; default 0 = off)
    --chunk N         cases per chunk (default 25; pinned by the cursor)
    --seed N          soak seed every chunk seed is mixed from (default
                      42; pinned by the cursor)
    --threads N       cores == threads (default 2)
    --scale F         workload scale factor (default 0.05)
    --checkpoints N   checkpoints per nominal run (default 8)
    --latency F       detection latency / checkpoint period (default 0.5)
    --policy P        acr | baseline (default acr)
    --models LIST     fault-model presets to sweep, comma-separated subset
                      of recoverable,classic,adversarial,adversarial-storm,
                      stuck (default all five)
    --resilience LIST resilience presets to sweep, comma-separated subset
                      of baseline,nested,watchdog (default all three)
    --jobs N          worker threads per chunk campaign (0 = auto); chunk
                      results are byte-identical for every value
    --cursor FILE     resume from FILE if it exists, and write the
                      advanced cursor back to it on exit; the cursor pins
                      seed, chunk size and a grid fingerprint, and carries
                      a per-combo hash chain proving a resumed soak
                      continued the exact same stream
    --postmortem-dir D
                      write every non-recovered case's bundle into D as
                      postmortem.<workload>.chunk<NNNN>.case<NNNN>.json
    --print-metrics   print this invocation's soak.* metrics table

SHRINK OPTIONS:
    --workload W      workload to plan the dense failing case on
                      (default cg)
    --seed N          plan seed (default 42)
    --faults N        faults in the dense plan — all injected into ONE
                      case (default 10)
    --kinds SET       fault kinds the plan draws from (default mem)
    --storm G,B       cluster the plan's injection points (default off)
    --threads N       cores == threads (default 2)
    --scale F         workload scale factor (default 0.05)
    --checkpoints N   checkpoints per nominal run (default 4)
    --latency F       detection latency / checkpoint period (default 0.5)
    --policy P        acr | baseline (default acr)
    --recovery-faults strike the case's first recovery with a nested
                      recovery-window fault (global scheme only)
    --generations N   checkpoint generations retained (default 1)
    --watchdog-budget N
                      recovery-watchdog cycle budget (default 0 = off)
    --case N          case index (seeds per-case machinery; default 0)
    --jobs N          worker threads evaluating ddmin candidates (0 =
                      auto); the shrunk plan is identical for every value
    --max-evals N     engine-run evaluation budget (default 2048)
    --out FILE        repro document path (default
                      repro.<workload>.case<NNNN>.json)
    --replay FILE     instead of shrinking, re-run FILE's minimal plan
                      once: exit 1 if it still fails (printing the
                      trigger), 0 if it no longer reproduces

EXIT CODES (uniform across subcommands):
    0   success — the run completed and every gate passed (`explain`
        exits 0 whenever the bundle parses; `shrink --replay` exits 0
        when the repro no longer fails)
    1   gate or divergence failure — `inject` saw diverged or aborted
        cases, `soak` saw silent data corruption, `shrink --replay`
        reproduced its failure, or `diff` found a regression
    2   usage or configuration error — unknown flag or subcommand, bad
        value, unreadable input; the message is a single `error: …`
        line on stderr

Every quantity the campaign reports is derived from the seeded plan and
the deterministic simulator — two invocations with the same options
produce byte-identical output (the content hash makes that checkable,
and `cmp` on two same-seed trace files does too). Manifests keep the two
worlds apart: the sim section is byte-identical across machines and
--jobs values, the host.* section is honest wall-clock and only ever
compared with a tolerance band.
";

struct InjectArgs {
    seed: u64,
    faults: u32,
    workloads: Vec<Benchmark>,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    latency: f64,
    kinds: FaultKindSet,
    storm: Option<FaultStorm>,
    watchdog_budget: u64,
    amnesic: bool,
    scheme: Scheme,
    csv_dir: Option<String>,
    metrics_out: Option<String>,
    sample_interval: u64,
    recovery_faults: bool,
    generations: u32,
    jobs: usize,
    progress: bool,
    manifest_out: Option<String>,
    postmortem_dir: Option<String>,
    print_metrics: bool,
}

impl Default for InjectArgs {
    fn default() -> Self {
        InjectArgs {
            seed: 42,
            faults: 1000,
            workloads: vec![Benchmark::Is, Benchmark::Cg, Benchmark::Mg],
            threads: 4,
            scale: 0.05,
            checkpoints: 12,
            latency: 0.5,
            kinds: FaultKindSet::recoverable(),
            storm: None,
            watchdog_budget: 0,
            amnesic: true,
            scheme: Scheme::GlobalCoordinated,
            csv_dir: None,
            metrics_out: None,
            sample_interval: 0,
            recovery_faults: false,
            generations: 1,
            jobs: 0,
            progress: false,
            manifest_out: None,
            postmortem_dir: None,
            print_metrics: false,
        }
    }
}

fn parse_inject(args: &[String]) -> Result<InjectArgs, String> {
    let mut out = InjectArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        // Valueless flags first — everything else takes a value.
        if flag == "--recovery-faults" {
            out.recovery_faults = true;
            i += 1;
            continue;
        }
        if flag == "--progress" {
            out.progress = true;
            i += 1;
            continue;
        }
        if flag == "--print-metrics" {
            out.print_metrics = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => {
                out.faults = value.parse().map_err(|e| format!("--faults: {e}"))?;
                if out.faults == 0 {
                    return Err("--faults must be positive".into());
                }
            }
            "--workloads" => {
                out.workloads = value
                    .split(',')
                    .map(|n| {
                        Benchmark::from_name(n.trim())
                            .ok_or_else(|| format!("unknown workload `{n}`"))
                    })
                    .collect::<Result<_, _>>()?;
                if out.workloads.is_empty() {
                    return Err("--workloads must name at least one workload".into());
                }
            }
            "--threads" => {
                out.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scale" => out.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--checkpoints" => {
                out.checkpoints = value.parse().map_err(|e| format!("--checkpoints: {e}"))?;
            }
            "--latency" => {
                out.latency = value.parse().map_err(|e| format!("--latency: {e}"))?;
                if !(0.0..=1.0).contains(&out.latency) {
                    return Err("--latency must be within [0, 1]".into());
                }
            }
            "--kinds" => out.kinds = FaultKindSet::parse(value)?,
            "--storm" => {
                out.storm = Some(FaultStorm::parse(value).map_err(|e| format!("--storm: {e}"))?)
            }
            "--watchdog-budget" => {
                out.watchdog_budget = value
                    .parse()
                    .map_err(|e| format!("--watchdog-budget: {e}"))?;
            }
            "--policy" => {
                out.amnesic = match value.as_str() {
                    "acr" => true,
                    "baseline" => false,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--scheme" => {
                out.scheme = match value.as_str() {
                    "global" => Scheme::GlobalCoordinated,
                    "local" => Scheme::LocalCoordinated,
                    other => return Err(format!("unknown scheme `{other}`")),
                };
            }
            "--csv" => out.csv_dir = Some(value.clone()),
            "--metrics-out" => out.metrics_out = Some(value.clone()),
            "--sample-interval" => {
                out.sample_interval = value
                    .parse()
                    .map_err(|e| format!("--sample-interval: {e}"))?;
            }
            "--generations" => {
                out.generations = value.parse().map_err(|e| format!("--generations: {e}"))?;
                if out.generations == 0 {
                    return Err("--generations must be positive".into());
                }
            }
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--manifest-out" => out.manifest_out = Some(value.clone()),
            "--postmortem-dir" => out.postmortem_dir = Some(value.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    if out.metrics_out.is_some() && out.sample_interval == 0 {
        out.sample_interval = 5000;
    }
    Ok(out)
}

/// The sim-relevant configuration of an inject-style campaign as ordered
/// manifest pairs. Execution knobs that must not change results (`--jobs`,
/// `--progress`, output paths) are deliberately excluded so the manifest's
/// gated section stays identical across them.
fn inject_config(a: &InjectArgs) -> Vec<(String, String)> {
    let workloads: Vec<&str> = a.workloads.iter().map(|b| b.name()).collect();
    [
        ("seed", a.seed.to_string()),
        ("faults", a.faults.to_string()),
        ("workloads", workloads.join(",")),
        ("threads", a.threads.to_string()),
        ("scale", a.scale.to_string()),
        ("checkpoints", a.checkpoints.to_string()),
        ("latency", a.latency.to_string()),
        ("kinds", kinds_str(a.kinds)),
        ("storm", storm_str(a.storm)),
        ("watchdog_budget", a.watchdog_budget.to_string()),
        (
            "policy",
            (if a.amnesic { "acr" } else { "baseline" }).to_string(),
        ),
        ("scheme", scheme_str(a.scheme).to_string()),
        ("recovery_faults", a.recovery_faults.to_string()),
        ("generations", a.generations.to_string()),
        ("sample_interval", a.sample_interval.to_string()),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

fn scheme_str(s: Scheme) -> &'static str {
    match s {
        Scheme::GlobalCoordinated => "global",
        Scheme::LocalCoordinated => "local",
    }
}

/// The fault-kind set as the comma list `--kinds` accepts.
fn kinds_str(k: FaultKindSet) -> String {
    let mut kinds = Vec::new();
    if k.reg {
        kinds.push("reg");
    }
    if k.pc {
        kinds.push("pc");
    }
    if k.mem {
        kinds.push("mem");
    }
    if k.burst {
        kinds.push("burst");
    }
    if k.stuck {
        kinds.push("stuck");
    }
    if k.crash {
        kinds.push("crash");
    }
    kinds.join(",")
}

/// A storm schedule as the `G,B` spec `--storm` accepts (`off` when
/// placement is uniform).
fn storm_str(s: Option<FaultStorm>) -> String {
    match s {
        Some(s) => format!("{},{}", s.mean_gap, s.max_burst),
        None => "off".to_string(),
    }
}

/// The exact command line that reproduces an inject campaign (and with it
/// every postmortem bundle it writes) — stamped into each bundle so a
/// triage report is self-describing. Execution knobs that cannot change
/// results (`--jobs`, `--progress`, output paths) are omitted.
fn repro_line(a: &InjectArgs) -> String {
    let workloads: Vec<&str> = a.workloads.iter().map(|b| b.name()).collect();
    let mut out = format!(
        "acr_cli inject --seed {} --faults {} --workloads {} --threads {} \
         --scale {} --checkpoints {} --latency {} --kinds {} --policy {} --scheme {}",
        a.seed,
        a.faults,
        workloads.join(","),
        a.threads,
        a.scale,
        a.checkpoints,
        a.latency,
        kinds_str(a.kinds),
        if a.amnesic { "acr" } else { "baseline" },
        scheme_str(a.scheme),
    );
    if let Some(s) = a.storm {
        let _ = write!(out, " --storm {},{}", s.mean_gap, s.max_burst);
    }
    if a.watchdog_budget != 0 {
        let _ = write!(out, " --watchdog-budget {}", a.watchdog_budget);
    }
    if a.recovery_faults {
        out.push_str(" --recovery-faults");
    }
    if a.generations != 1 {
        let _ = write!(out, " --generations {}", a.generations);
    }
    if a.sample_interval != 0 {
        let _ = write!(out, " --sample-interval {}", a.sample_interval);
    }
    out
}

/// The unit column of the metrics pretty-printer, inferred from the key's
/// last dotted segment.
fn metric_unit(key: &str) -> &'static str {
    let mut segs = key.rsplit('.');
    let mut last = segs.next().unwrap_or(key);
    // Histogram digests (`….cycles.p50`) carry their base key's unit;
    // the sample count stays a count.
    if matches!(last, "max" | "min" | "sum" | "p50" | "p90" | "p99") {
        last = segs.next().unwrap_or(last);
    }
    if last.ends_with("cycles") || last == "stall" {
        "cycles"
    } else if last.ends_with("bytes") {
        "bytes"
    } else if last.ends_with("joules") {
        "J"
    } else if last.ends_with("pct") {
        "%"
    } else {
        "count"
    }
}

/// Renders metric key/value pairs as an aligned three-column table
/// (key, value, unit), two-space indented.
fn metrics_table(pairs: &[(String, u64)]) -> String {
    let width = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in pairs {
        let _ = writeln!(out, "  {k:<width$}  {v:>14}  {}", metric_unit(k));
    }
    out
}

/// Builds the per-workload sweep items of an inject-style campaign:
/// `--faults` split evenly across the workloads (remainder to the first
/// ones), per-workload seed = `--seed + index`.
fn campaign_items(a: &InjectArgs) -> Vec<CampaignSweepItem> {
    let n = a.workloads.len() as u32;
    let base_count = a.faults / n;
    let remainder = a.faults % n;
    a.workloads
        .iter()
        .enumerate()
        .filter_map(|(i, &bench)| {
            let count = base_count + u32::from((i as u32) < remainder);
            if count == 0 {
                return None;
            }
            Some(CampaignSweepItem {
                name: bench.name().to_owned(),
                program: generate(
                    bench,
                    &WorkloadConfig::default()
                        .with_threads(a.threads)
                        .with_scale(a.scale),
                ),
                campaign: CampaignConfig {
                    seed: a.seed.wrapping_add(i as u64),
                    count,
                    kinds: a.kinds,
                    storm: a.storm,
                    num_checkpoints: a.checkpoints,
                    detection_latency_frac: a.latency,
                    scheme: a.scheme,
                    sample_interval: a.sample_interval,
                    recovery_faults: a.recovery_faults,
                    generations: a.generations,
                    watchdog_budget_cycles: a.watchdog_budget,
                    progress: a.progress,
                    ..CampaignConfig::default()
                },
                amnesic: a.amnesic,
            })
        })
        .collect()
}

/// The deterministic outcome of one inject-style sweep, accumulated for
/// manifests: per-workload content hashes, the merged metrics digest, and
/// the host-side observability that rides next to them.
struct SweepDigest {
    /// `(workload, content_hash)` in workload order.
    hashes: Vec<(String, u64)>,
    /// Digest of all workloads' metrics registries merged into one.
    digest: u64,
    /// Per-worker loads merged index-wise across workloads.
    loads: Vec<WorkerLoad>,
    /// Simulated cycles executed across all fault cases.
    sim_cycles: u64,
    /// Retired instructions across all cases (each case re-runs the
    /// nominal execution, so this is `total_progress x cases` summed).
    retired: u64,
}

impl SweepDigest {
    fn new() -> Self {
        SweepDigest {
            hashes: Vec::new(),
            digest: 0,
            loads: Vec::new(),
            sim_cycles: 0,
            retired: 0,
        }
    }

    /// Folds one workload outcome in (workload order = call order).
    fn fold(&mut self, name: &str, run: &acr::CampaignRunResult, merged: &mut MetricsRegistry) {
        let r = &run.report;
        self.hashes.push((name.to_owned(), r.content_hash()));
        merged.merge(&r.metrics);
        self.digest = merged.digest();
        merge_loads(&mut self.loads, &run.host_loads);
        self.sim_cycles += r
            .metrics
            .hist("campaign.case.cycles")
            .map_or(0, |h| h.sum());
        self.retired += r.total_progress * r.injected();
    }

    /// The CLI's combined hash: FNV-1a over the little-endian bytes of
    /// each workload's content hash, in workload order.
    fn combined(&self) -> u64 {
        let mut h = Fnv1a::new();
        for (_, hash) in &self.hashes {
            h.write_u64(*hash);
        }
        h.finish()
    }

    /// The manifest's sim-hash list: per-workload hashes plus the
    /// `combined` fold.
    fn sim_hashes(&self) -> Vec<(String, u64)> {
        let mut out = self.hashes.clone();
        out.push(("combined".to_owned(), self.combined()));
        out
    }
}

fn write_manifest(path: &str, m: &Manifest) -> Result<(), String> {
    std::fs::write(path, m.to_json()).map_err(|e| format!("{path}: {e}"))
}

fn inject(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_inject(args)?;
    if let Some(dir) = &a.csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--csv {dir}: {e}"))?;
    }
    if let Some(dir) = &a.postmortem_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--postmortem-dir {dir}: {e}"))?;
    }

    let mut injected = 0u64;
    let mut detected = 0u64;
    let mut recovered = 0u64;
    let mut diverged = 0u64;
    let mut aborted = 0u64;
    let mut divergent_words = 0u64;
    let mut classes = (0u64, 0u64, 0u64, 0u64);
    let mut recovery_cycles = 0u64;
    let mut recovery_energy = 0.0f64;
    let mut replay_retries = 0u64;
    let mut generation_fallbacks = 0u64;
    let mut degraded_entries = 0u64;
    let mut metrics_jsonl = String::new();
    let mut digest = SweepDigest::new();
    let mut merged = MetricsRegistry::new();
    let mut host = HostPerf::start();

    // One sweep item per workload; the sweep shards --jobs workers over
    // workloads first and hands any surplus down as per-case campaign
    // shards. Every byte below is identical for every jobs value —
    // except the host.* manifest section, which is honest wall-clock.
    let items = campaign_items(&a);

    let outcomes = host.time("sweep", || {
        run_campaign_sweep(&items, a.jobs, |item| {
            let bench = Benchmark::from_name(&item.name).expect("items are built from benchmarks");
            ExperimentSpec::default()
                .with_cores(a.threads)
                .with_threshold(bench.default_threshold())
        })
    });

    for o in outcomes {
        let name = o.name;
        let run = o.run.map_err(|e| format!("{name}: {e}"))?;
        let r = &run.report;
        host.add_phase_ns(&name, o.host_ns);
        digest.fold(&name, &run, &mut merged);

        println!("== {} ({}) ==", name, run.label);
        if a.progress {
            print!("{}", r.case_log);
        }
        print!("{}", r.summary());
        println!(
            "  recovery energy {:.6e} J over {:.6e} s",
            run.recovery_energy_joules, run.recovery_seconds
        );
        for c in r
            .cases
            .iter()
            .filter(|c| c.outcome == CaseOutcome::Diverged)
        {
            println!(
                "  case {}: fault landed at cycle {}, recovery stalled {} cycles \
                 ({} words still divergent)",
                c.case,
                c.landing_cycle,
                c.recovery_stall_cycles,
                c.mem_divergence + c.reg_divergence
            );
        }
        if let Some(dir) = &a.postmortem_dir {
            for bundle in &r.postmortems {
                let mut b = bundle.clone();
                b.workload = name.clone();
                b.repro = repro_line(&a);
                let path = format!("{dir}/postmortem.{name}.case{:04}.json", b.case);
                std::fs::write(&path, b.to_json()).map_err(|e| format!("{path}: {e}"))?;
                println!("  postmortem -> {path}");
            }
        }
        if a.metrics_out.is_some() {
            metrics_jsonl.push_str(&r.baseline_series.to_jsonl(&[("workload", &name)]));
        }
        injected += r.injected();
        detected += r.detected();
        recovered += r.recovered();
        diverged += r.diverged();
        aborted += r.aborted();
        let (c_rec, c_due, c_sdc, c_hang) = r.class_counts();
        classes = (
            classes.0 + c_rec,
            classes.1 + c_due,
            classes.2 + c_sdc,
            classes.3 + c_hang,
        );
        divergent_words += r.divergent_words();
        recovery_cycles += r.recovery_stall_cycles();
        recovery_energy += run.recovery_energy_joules;
        replay_retries += r.replay_retries();
        generation_fallbacks += r.generation_fallbacks();
        degraded_entries += r.degraded_entries();

        if let Some(dir) = &a.csv_dir {
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, r.csv()).map_err(|e| format!("{path}: {e}"))?;
            println!("  cases written to {path}");
        }
    }

    println!("== campaign total ==");
    println!(
        "  injected {injected}  detected {detected}  recovered {recovered}  \
         diverged {diverged}  aborted {aborted}"
    );
    println!(
        "  outcome classes: recovered {}  due {}  sdc {}  hang {}",
        classes.0, classes.1, classes.2, classes.3
    );
    println!(
        "  state-divergence count {divergent_words}  recovery cycles {recovery_cycles}  \
         recovery energy {recovery_energy:.6e} J"
    );
    if a.recovery_faults {
        println!(
            "  escalation total: replay_retries {replay_retries}  \
             generation_fallbacks {generation_fallbacks}  \
             degraded_entries {degraded_entries}"
        );
    }
    if let Some(path) = &a.metrics_out {
        std::fs::write(path, &metrics_jsonl).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "  baseline metrics written to {path} (every {} cycles)",
            a.sample_interval
        );
    }
    println!("  combined hash {:#018x}", digest.combined());
    if a.print_metrics {
        let pairs: Vec<(String, u64)> = merged.iter().map(|(k, v)| (k.to_owned(), v)).collect();
        println!("  merged metrics ({} keys):", pairs.len());
        print!("{}", metrics_table(&pairs));
    }
    if let Some(path) = &a.manifest_out {
        let wall = host.wall_ns();
        host.record_throughput(digest.sim_cycles, digest.retired, wall);
        host.record_jobs(
            a.jobs as u64,
            ParallelRunner::new(a.jobs).jobs() as u64,
            &digest.loads,
        );
        let m = Manifest {
            command: "inject".to_owned(),
            config: inject_config(&a),
            sim_hashes: digest.sim_hashes(),
            metrics_digest: digest.digest,
            host: host.finish(),
            bench: None,
        };
        write_manifest(path, &m)?;
        println!("  manifest -> {path}");
    }
    Ok(if diverged > 0 || aborted > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

struct SoakArgs {
    workloads: Vec<Benchmark>,
    cases: u64,
    budget_secs: u64,
    chunk: u32,
    seed: u64,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    latency: f64,
    amnesic: bool,
    models: Vec<SoakModel>,
    resilience: Vec<SoakResilience>,
    jobs: usize,
    cursor: Option<String>,
    postmortem_dir: Option<String>,
    print_metrics: bool,
}

impl Default for SoakArgs {
    fn default() -> Self {
        SoakArgs {
            workloads: vec![Benchmark::Is, Benchmark::Cg],
            cases: 500,
            budget_secs: 0,
            chunk: 25,
            seed: 42,
            threads: 2,
            scale: 0.05,
            checkpoints: 8,
            latency: 0.5,
            amnesic: true,
            models: default_models(),
            resilience: default_resilience(),
            jobs: 0,
            cursor: None,
            postmortem_dir: None,
            print_metrics: false,
        }
    }
}

/// Selects presets by label from `all`, preserving the canonical order
/// (the grid fingerprint depends on it, so a reordered `--models` list
/// still resumes the same soak).
fn pick_presets<T: Clone>(
    value: &str,
    flag: &str,
    all: &[T],
    label: impl Fn(&T) -> String,
) -> Result<Vec<T>, String> {
    let wanted: Vec<&str> = value.split(',').map(str::trim).collect();
    for w in &wanted {
        if !all.iter().any(|p| label(p) == *w) {
            let known: Vec<String> = all.iter().map(&label).collect();
            return Err(format!(
                "{flag}: unknown preset `{w}` (known: {})",
                known.join(",")
            ));
        }
    }
    let picked: Vec<T> = all
        .iter()
        .filter(|p| wanted.contains(&label(p).as_str()))
        .cloned()
        .collect();
    if picked.is_empty() {
        return Err(format!("{flag} must name at least one preset"));
    }
    Ok(picked)
}

fn parse_soak(args: &[String]) -> Result<SoakArgs, String> {
    let mut out = SoakArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--print-metrics" {
            out.print_metrics = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--workloads" => out.workloads = parse_workloads(value)?,
            "--cases" => {
                out.cases = value.parse().map_err(|e| format!("--cases: {e}"))?;
                if out.cases == 0 {
                    return Err("--cases must be positive".into());
                }
            }
            "--budget-secs" => {
                out.budget_secs = value.parse().map_err(|e| format!("--budget-secs: {e}"))?;
            }
            "--chunk" => {
                out.chunk = value.parse().map_err(|e| format!("--chunk: {e}"))?;
                if out.chunk == 0 {
                    return Err("--chunk must be positive".into());
                }
            }
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--threads" => {
                out.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scale" => out.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--checkpoints" => {
                out.checkpoints = value.parse().map_err(|e| format!("--checkpoints: {e}"))?;
            }
            "--latency" => {
                out.latency = value.parse().map_err(|e| format!("--latency: {e}"))?;
                if !(0.0..=1.0).contains(&out.latency) {
                    return Err("--latency must be within [0, 1]".into());
                }
            }
            "--policy" => {
                out.amnesic = match value.as_str() {
                    "acr" => true,
                    "baseline" => false,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--models" => {
                out.models =
                    pick_presets(value, "--models", &default_models(), |m| m.label.clone())?;
            }
            "--resilience" => {
                out.resilience = pick_presets(value, "--resilience", &default_resilience(), |r| {
                    r.label.clone()
                })?;
            }
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--cursor" => out.cursor = Some(value.clone()),
            "--postmortem-dir" => out.postmortem_dir = Some(value.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok(out)
}

/// The exact command line that reproduces a soak stream (stamped into
/// every postmortem the soak writes). Execution knobs that cannot change
/// chunk results (`--jobs`, budgets, output paths) are omitted — the
/// stream is fully determined by seed, chunk size and the grid.
fn soak_repro_line(a: &SoakArgs) -> String {
    let workloads: Vec<&str> = a.workloads.iter().map(|b| b.name()).collect();
    let models: Vec<&str> = a.models.iter().map(|m| m.label.as_str()).collect();
    let presets: Vec<&str> = a.resilience.iter().map(|r| r.label.as_str()).collect();
    format!(
        "acr_cli soak --workloads {} --seed {} --chunk {} --threads {} --scale {} \
         --checkpoints {} --latency {} --policy {} --models {} --resilience {}",
        workloads.join(","),
        a.seed,
        a.chunk,
        a.threads,
        a.scale,
        a.checkpoints,
        a.latency,
        if a.amnesic { "acr" } else { "baseline" },
        models.join(","),
        presets.join(","),
    )
}

/// One cached `Experiment` per soak workload (instrumentation is paid
/// once, not once per chunk).
fn soak_experiments(a: &SoakArgs) -> Result<Vec<(String, Experiment)>, String> {
    a.workloads
        .iter()
        .map(|&bench| {
            let program = generate(
                bench,
                &WorkloadConfig::default()
                    .with_threads(a.threads)
                    .with_scale(a.scale),
            );
            let spec = ExperimentSpec::default()
                .with_cores(a.threads)
                .with_threshold(bench.default_threshold());
            Experiment::new(program, spec)
                .map(|e| (bench.name().to_string(), e))
                .map_err(|e| format!("{}: {e}", bench.name()))
        })
        .collect()
}

fn soak(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_soak(args)?;
    if let Some(dir) = &a.postmortem_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--postmortem-dir {dir}: {e}"))?;
    }
    let names: Vec<String> = a.workloads.iter().map(|b| b.name().to_string()).collect();
    let grid = SoakGrid::new(&names, &a.models, &a.resilience);
    let cursor = match &a.cursor {
        Some(path) if std::path::Path::new(path).exists() => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let c = SoakCursor::parse(&text, &grid).map_err(|e| format!("--cursor {path}: {e}"))?;
            if c.seed != a.seed {
                return Err(format!(
                    "--cursor {path}: cursor seed {:#x} != --seed {:#x}; a resumed \
                     soak must keep its seed",
                    c.seed, a.seed
                ));
            }
            if c.chunk_cases != a.chunk {
                return Err(format!(
                    "--cursor {path}: cursor chunk size {} != --chunk {}; a resumed \
                     soak must keep its chunk size",
                    c.chunk_cases, a.chunk
                ));
            }
            c
        }
        _ => SoakCursor::new(&grid, a.seed, a.chunk),
    };

    let base = CampaignConfig {
        num_checkpoints: a.checkpoints,
        detection_latency_frac: a.latency,
        jobs: a.jobs,
        ..CampaignConfig::default()
    };
    let mut exps = soak_experiments(&a)?;
    println!(
        "== soak: {} combos x {} cases/chunk, seed {} ==",
        grid.combos.len(),
        a.chunk,
        a.seed
    );
    if cursor.chunks_done > 0 {
        let (done, ..) = cursor.totals();
        println!(
            "  resuming at chunk {} ({done} cases on the books)",
            cursor.chunks_done
        );
    }

    let started = std::time::Instant::now();
    let out = run_soak(
        &grid,
        &base,
        cursor,
        |combo, cfg| {
            let exp = exps
                .iter_mut()
                .find(|(n, _)| *n == combo.workload)
                .map(|(_, e)| e)
                .expect("grid workloads are built from these experiments");
            exp.run_fault_campaign(cfg, a.amnesic)
                .map(|r| r.report)
                .map_err(|e| match e {
                    ExperimentError::Campaign(c) => c,
                    other => CampaignError::Config(CkptError::Unsupported {
                        what: other.to_string(),
                    }),
                })
        },
        |c| {
            let (cases, ..) = c.totals();
            cases < a.cases && (a.budget_secs == 0 || started.elapsed().as_secs() < a.budget_secs)
        },
    )
    .map_err(|e| e.to_string())?;

    print!("{}", out.log);
    println!(
        "== soak matrix ({} chunks total, {} this run) ==",
        out.cursor.chunks_done, out.chunks_run
    );
    print!("{}", out.cursor.matrix());
    if let Some(dir) = &a.postmortem_dir {
        for pm in &out.postmortems {
            let mut b = pm.bundle.clone();
            b.workload = pm.workload.clone();
            b.repro = soak_repro_line(&a);
            let path = format!(
                "{dir}/postmortem.{}.chunk{:04}.case{:04}.json",
                pm.workload, pm.chunk, b.case
            );
            std::fs::write(&path, b.to_json()).map_err(|e| format!("{path}: {e}"))?;
        }
        println!("  {} postmortems -> {dir}", out.postmortems.len());
    }
    if a.print_metrics {
        let pairs: Vec<(String, u64)> =
            out.metrics.iter().map(|(k, v)| (k.to_owned(), v)).collect();
        println!("  soak metrics ({} keys):", pairs.len());
        print!("{}", metrics_table(&pairs));
    }
    if let Some(path) = &a.cursor {
        std::fs::write(path, out.cursor.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("  cursor -> {path}");
    }
    let (_, _, _, sdc, _) = out.cursor.totals();
    if sdc > 0 {
        println!("  SILENT DATA CORRUPTION: {sdc} case(s) — triage the postmortems");
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

struct ShrinkArgs {
    workload: Benchmark,
    seed: u64,
    faults: u32,
    kinds: FaultKindSet,
    storm: Option<FaultStorm>,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    latency: f64,
    amnesic: bool,
    recovery_faults: bool,
    generations: u32,
    watchdog_budget: u64,
    case: usize,
    jobs: usize,
    max_evals: u64,
    out: Option<String>,
    replay: Option<String>,
}

impl Default for ShrinkArgs {
    fn default() -> Self {
        ShrinkArgs {
            workload: Benchmark::Cg,
            seed: 42,
            faults: 10,
            kinds: FaultKindSet {
                reg: false,
                pc: false,
                mem: true,
                burst: false,
                stuck: false,
                crash: false,
            },
            storm: None,
            threads: 2,
            scale: 0.05,
            checkpoints: 4,
            latency: 0.5,
            amnesic: true,
            recovery_faults: false,
            generations: 1,
            watchdog_budget: 0,
            case: 0,
            jobs: 0,
            max_evals: 2048,
            out: None,
            replay: None,
        }
    }
}

fn parse_shrink(args: &[String]) -> Result<ShrinkArgs, String> {
    let mut out = ShrinkArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--recovery-faults" {
            out.recovery_faults = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--workload" => {
                out.workload = Benchmark::from_name(value.trim())
                    .ok_or_else(|| format!("unknown workload `{value}`"))?;
            }
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => {
                out.faults = value.parse().map_err(|e| format!("--faults: {e}"))?;
                if out.faults == 0 {
                    return Err("--faults must be positive".into());
                }
            }
            "--kinds" => out.kinds = FaultKindSet::parse(value)?,
            "--storm" => {
                out.storm = Some(FaultStorm::parse(value).map_err(|e| format!("--storm: {e}"))?)
            }
            "--threads" => {
                out.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scale" => out.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--checkpoints" => {
                out.checkpoints = value.parse().map_err(|e| format!("--checkpoints: {e}"))?;
            }
            "--latency" => {
                out.latency = value.parse().map_err(|e| format!("--latency: {e}"))?;
                if !(0.0..=1.0).contains(&out.latency) {
                    return Err("--latency must be within [0, 1]".into());
                }
            }
            "--policy" => {
                out.amnesic = match value.as_str() {
                    "acr" => true,
                    "baseline" => false,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--generations" => {
                out.generations = value.parse().map_err(|e| format!("--generations: {e}"))?;
                if out.generations == 0 {
                    return Err("--generations must be positive".into());
                }
            }
            "--watchdog-budget" => {
                out.watchdog_budget = value
                    .parse()
                    .map_err(|e| format!("--watchdog-budget: {e}"))?;
            }
            "--case" => out.case = value.parse().map_err(|e| format!("--case: {e}"))?,
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--max-evals" => {
                out.max_evals = value.parse().map_err(|e| format!("--max-evals: {e}"))?;
                if out.max_evals == 0 {
                    return Err("--max-evals must be positive".into());
                }
            }
            "--out" => out.out = Some(value.clone()),
            "--replay" => out.replay = Some(value.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok(out)
}

/// One `Experiment` over one workload, as the shrink paths build it.
fn shrink_experiment(bench: Benchmark, threads: u32, scale: f64) -> Result<Experiment, String> {
    let program = generate(
        bench,
        &WorkloadConfig::default()
            .with_threads(threads)
            .with_scale(scale),
    );
    Experiment::new(
        program,
        ExperimentSpec::default()
            .with_cores(threads)
            .with_threshold(bench.default_threshold()),
    )
    .map_err(|e| format!("{}: {e}", bench.name()))
}

/// The `acr.repro.v1` document: everything `--replay` needs to rebuild
/// the exact engine configuration, plus the minimal fault plan. Fractions
/// are serialized as strings (the JSON layer is `f64`-backed and the
/// round-trip must be exact); big `u64`s as hex strings.
fn repro_doc(a: &ShrinkArgs, out: &acr_ckpt::ShrinkOutcome) -> String {
    let mut o = String::from("{\n  \"schema\": ");
    acr_trace::push_json_string(&mut o, REPRO_SCHEMA);
    let _ = write!(o, ",\n  \"workload\": \"{}\"", a.workload.name());
    let _ = write!(o, ",\n  \"case\": {}", a.case);
    let _ = write!(o, ",\n  \"seed\": \"{:#x}\"", a.seed);
    let _ = write!(o, ",\n  \"threads\": {}", a.threads);
    let _ = write!(o, ",\n  \"scale\": \"{}\"", a.scale);
    let _ = write!(o, ",\n  \"checkpoints\": {}", a.checkpoints);
    let _ = write!(o, ",\n  \"latency\": \"{}\"", a.latency);
    let _ = write!(
        o,
        ",\n  \"policy\": \"{}\"",
        if a.amnesic { "acr" } else { "baseline" }
    );
    let _ = write!(o, ",\n  \"recovery_faults\": {}", a.recovery_faults);
    let _ = write!(o, ",\n  \"generations\": {}", a.generations);
    let _ = write!(o, ",\n  \"watchdog_budget\": {}", a.watchdog_budget);
    let _ = write!(o, ",\n  \"trigger\": \"{}\"", out.failure.trigger);
    o.push_str(",\n  \"probable_cause\": ");
    acr_trace::push_json_string(&mut o, &out.failure.bundle.probable_cause);
    let _ = write!(o, ",\n  \"original_faults\": {}", out.original_faults);
    o.push_str(",\n  \"faults\": [");
    for (i, f) in out.minimal.iter().enumerate() {
        o.push_str(if i == 0 { "\n    " } else { ",\n    " });
        o.push_str(&fault_to_json(f));
    }
    o.push_str("\n  ]\n}\n");
    o
}

/// Re-runs a repro document's minimal plan exactly once: exit 1 when the
/// failure reproduces (same-signature triage can proceed), 0 when it no
/// longer fails (the repro is stale).
fn shrink_replay(path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let j = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = jstr(&j, "schema");
    if schema != REPRO_SCHEMA {
        return Err(format!(
            "{path}: unknown repro schema `{schema}` (expected {REPRO_SCHEMA})"
        ));
    }
    let workload = Benchmark::from_name(jstr(&j, "workload"))
        .ok_or_else(|| format!("{path}: unknown workload `{}`", jstr(&j, "workload")))?;
    let frac = |key: &str| -> Result<f64, String> {
        jstr(&j, key)
            .parse()
            .map_err(|e| format!("{path}: field `{key}`: {e}"))
    };
    let seed = u64::from_str_radix(jstr(&j, "seed").trim_start_matches("0x"), 16)
        .map_err(|e| format!("{path}: field `seed`: {e}"))?;
    let faults = j
        .get("faults")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: field `faults` missing"))?
        .iter()
        .map(fault_from_json)
        .collect::<Result<Vec<Fault>, String>>()
        .map_err(|e| format!("{path}: {e}"))?;
    // `jnum` reads absent fields as 0, so a truncated document would
    // otherwise ask for a zero-thread experiment (rejected far less
    // legibly downstream).
    let threads = jnum(&j, "threads") as u32;
    if threads == 0 {
        return Err(format!(
            "{path}: field `threads` missing or zero (a repro document \
             describes at least one thread)"
        ));
    }
    let case = jnum(&j, "case") as usize;
    let cfg = CampaignConfig {
        seed,
        count: faults.len().max(1) as u32,
        num_checkpoints: jnum(&j, "checkpoints") as u32,
        detection_latency_frac: frac("latency")?,
        recovery_faults: jbool(&j, "recovery_faults"),
        generations: (jnum(&j, "generations") as u32).max(1),
        watchdog_budget_cycles: jnum(&j, "watchdog_budget"),
        jobs: 1,
        ..CampaignConfig::default()
    };
    let amnesic = jstr(&j, "policy") == "acr";
    let mut exp = shrink_experiment(workload, threads, frac("scale")?)?;
    println!(
        "== replay: {} case {:04}, {} fault(s) ==",
        workload.name(),
        case,
        faults.len()
    );
    match exp
        .replay_fault_case(&cfg, amnesic, case, &faults)
        .map_err(|e| e.to_string())?
    {
        Some(failure) => {
            println!(
                "  reproduced: trigger {} (recorded {})",
                failure.trigger,
                jstr(&j, "trigger")
            );
            println!("  probable cause: {}", failure.bundle.probable_cause);
            Ok(ExitCode::from(1))
        }
        None => {
            println!("  did not reproduce: the plan no longer fails");
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn shrink(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_shrink(args)?;
    if let Some(path) = &a.replay {
        return shrink_replay(path);
    }
    let cfg = CampaignConfig {
        seed: a.seed,
        count: a.faults,
        kinds: a.kinds,
        storm: a.storm,
        num_checkpoints: a.checkpoints,
        detection_latency_frac: a.latency,
        recovery_faults: a.recovery_faults,
        generations: a.generations,
        watchdog_budget_cycles: a.watchdog_budget,
        jobs: 1,
        ..CampaignConfig::default()
    };
    let mut exp = shrink_experiment(a.workload, a.threads, a.scale)?;
    let faults = exp
        .plan_dense_faults(&cfg, a.amnesic)
        .map_err(|e| e.to_string())?;
    println!(
        "== shrink: {} case {:04}, {} planned fault(s) ==",
        a.workload.name(),
        a.case,
        faults.len()
    );
    let out = exp
        .shrink_fault_case(
            &cfg,
            a.amnesic,
            a.case,
            &faults,
            &ShrinkConfig {
                jobs: a.jobs,
                max_evaluations: a.max_evals,
            },
        )
        .map_err(|e| e.to_string())?;
    println!(
        "  {} fault(s) -> {} ({} dropped, {} field(s) narrowed) in {} round(s), \
         {} evaluation(s)",
        out.original_faults,
        out.minimal.len(),
        out.dropped_faults(),
        out.narrowed_fields,
        out.rounds,
        out.evaluations
    );
    println!("  trigger {}", out.failure.trigger);
    println!("  probable cause: {}", out.failure.bundle.probable_cause);
    println!("  minimal plan:");
    for f in &out.minimal {
        println!("    {}", fault_to_json(f));
    }
    let out_path = a
        .out
        .clone()
        .unwrap_or_else(|| format!("repro.{}.case{:04}.json", a.workload.name(), a.case));
    std::fs::write(&out_path, repro_doc(&a, &out)).map_err(|e| format!("{out_path}: {e}"))?;
    println!("  repro -> {out_path}");
    println!("  replay: acr_cli shrink --replay {out_path}");
    Ok(ExitCode::SUCCESS)
}

struct TraceArgs {
    workloads: Vec<Benchmark>,
    out: String,
    metrics_out: Option<String>,
    sample_interval: u64,
    seed: u64,
    faults: u32,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    scheme: Scheme,
    detail: bool,
    jobs: usize,
    manifest_out: Option<String>,
    print_metrics: bool,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            workloads: vec![Benchmark::Cg],
            out: "run.trace.json".to_owned(),
            metrics_out: None,
            sample_interval: 5000,
            seed: 42,
            faults: 1,
            threads: 2,
            scale: 0.05,
            checkpoints: 12,
            scheme: Scheme::GlobalCoordinated,
            detail: false,
            jobs: 0,
            manifest_out: None,
            print_metrics: false,
        }
    }
}

/// Parses a comma-separated, non-empty workload list.
fn parse_workloads(value: &str) -> Result<Vec<Benchmark>, String> {
    let list: Vec<Benchmark> = value
        .split(',')
        .map(|n| Benchmark::from_name(n.trim()).ok_or_else(|| format!("unknown workload `{n}`")))
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err("--workload must name at least one workload".into());
    }
    Ok(list)
}

fn parse_trace(args: &[String]) -> Result<TraceArgs, String> {
    let mut out = TraceArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--print-metrics" {
            out.print_metrics = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--workload" => out.workloads = parse_workloads(value)?,
            "--out" => out.out = value.clone(),
            "--metrics-out" => out.metrics_out = Some(value.clone()),
            "--sample-interval" => {
                out.sample_interval = value
                    .parse()
                    .map_err(|e| format!("--sample-interval: {e}"))?;
                if out.sample_interval == 0 {
                    return Err("--sample-interval must be positive".into());
                }
            }
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => {
                out.faults = value.parse().map_err(|e| format!("--faults: {e}"))?;
                if out.faults == 0 {
                    return Err("--faults must be positive".into());
                }
            }
            "--threads" => {
                out.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scale" => out.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--checkpoints" => {
                out.checkpoints = value.parse().map_err(|e| format!("--checkpoints: {e}"))?;
            }
            "--scheme" => {
                out.scheme = match value.as_str() {
                    "global" => Scheme::GlobalCoordinated,
                    "local" => Scheme::LocalCoordinated,
                    other => return Err(format!("unknown scheme `{other}`")),
                };
            }
            "--detail" => {
                out.detail = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--detail takes on|off, got `{other}`")),
                };
            }
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--manifest-out" => out.manifest_out = Some(value.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok(out)
}

/// The sim-relevant configuration of a trace/profile run as ordered
/// manifest pairs (`--jobs` and output paths excluded; see
/// [`inject_config`]).
fn faulted_config(
    workloads: &[Benchmark],
    seed: u64,
    faults: u32,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    scheme: Scheme,
) -> Vec<(String, String)> {
    let names: Vec<&str> = workloads.iter().map(|b| b.name()).collect();
    [
        ("seed", seed.to_string()),
        ("faults", faults.to_string()),
        ("workloads", names.join(",")),
        ("threads", threads.to_string()),
        ("scale", scale.to_string()),
        ("checkpoints", checkpoints.to_string()),
        ("scheme", scheme_str(scheme).to_string()),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

/// Inserts `.{name}` before the final extension (`run.trace.json` →
/// `run.trace.cg.json`; extensionless paths get `.{name}` appended) —
/// how multi-workload trace/profile runs keep one output file per
/// workload.
fn suffixed(path: &str, name: &str) -> String {
    match path.rfind('.') {
        Some(i) if i > 0 && !path[i..].contains('/') => {
            format!("{}.{name}{}", &path[..i], &path[i..])
        }
        _ => format!("{path}.{name}"),
    }
}

/// Places `count` guaranteed-recoverable register faults deterministically
/// along the progress axis: evenly spaced, cores round-robin, register and
/// bit derived from the seed. No RNG — the same seed always yields the
/// same trace bytes.
fn planned_faults(seed: u64, count: u32, total: u64, threads: u32) -> Vec<Fault> {
    (0..u64::from(count))
        .map(|i| Fault {
            at_progress: total * (i + 1) / (u64::from(count) + 1),
            core: CoreId((i % u64::from(threads)) as u32),
            kind: FaultKind::RegBitFlip {
                reg: (4 + (seed.wrapping_add(i)) % 24) as u8,
                bit: ((seed.wrapping_mul(7).wrapping_add(i * 13)) % 64) as u8,
            },
        })
        .collect()
}

fn trace(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_trace(args)?;
    let multi = a.workloads.len() > 1;
    let mut host = HostPerf::start();
    let mut sim_hashes: Vec<(String, u64)> = Vec::new();
    let mut metrics_digest = Fnv1a::new();
    let mut sim_cycles = 0u64;
    let mut retired = 0u64;
    let items: Vec<FaultedSweepItem> = a
        .workloads
        .iter()
        .map(|&bench| FaultedSweepItem {
            name: bench.name().to_owned(),
            program: generate(
                bench,
                &WorkloadConfig::default()
                    .with_threads(a.threads)
                    .with_scale(a.scale),
            ),
        })
        .collect();
    let outcomes = host.time("sweep", || {
        run_faulted_sweep(
            &items,
            a.jobs,
            Some(a.detail),
            |item| {
                let bench =
                    Benchmark::from_name(&item.name).expect("items are built from benchmarks");
                ExperimentSpec::default()
                    .with_cores(a.threads)
                    .with_checkpoints(a.checkpoints)
                    .with_threshold(bench.default_threshold())
                    .with_scheme(a.scheme)
                    .with_sample_interval(a.sample_interval)
            },
            |_, total| planned_faults(a.seed, a.faults, total, a.threads),
        )
    });

    for o in outcomes {
        let name = o.name;
        let run = o.run.map_err(|e| format!("{name}: {e}"))?;
        let result = &run.result;
        let report = result.report.as_ref().expect("engine runs carry a report");
        host.add_phase_ns(&name, o.host_ns);
        sim_cycles += result.cycles;
        retired += result.sim.retired;

        let out_path = if multi {
            suffixed(&a.out, &name)
        } else {
            a.out.clone()
        };
        let json = chrome_trace_json(&run.events, Some(&report.series));
        std::fs::write(&out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
        sim_hashes.push((name.clone(), fnv1a(json.as_bytes())));

        println!(
            "traced {} ({}): {} cycles, {} checkpoints, {} faults injected, {} recoveries",
            name,
            result.label,
            result.cycles,
            report.checkpoints_taken,
            report.faults_injected,
            report.recoveries.len(),
        );
        for (i, rec) in report.recoveries.iter().enumerate() {
            let landed = report.fault_landing_cycles.get(i).copied().unwrap_or(0);
            println!(
                "  recovery {i}: fault landed at cycle {landed}, detected at cycle {}, \
                 stalled {} cycles ({} values recomputed by Slice replay)",
                rec.detected_at_cycles, rec.stall_cycles, rec.recomputed_values
            );
        }
        println!(
            "  {} trace events + {} metric samples (every {} cycles) -> {}",
            run.events.len(),
            report.series.samples().len(),
            a.sample_interval,
            out_path
        );
        if a.print_metrics {
            if let Some(sample) = report.series.samples().last() {
                println!("  final metrics sample (cycle {}):", sample.cycle);
                print!("{}", metrics_table(&sample.values));
            }
        }
        let jsonl = report
            .series
            .to_jsonl(&[("workload", &name), ("run", "reckpt_faulted")]);
        metrics_digest.write(jsonl.as_bytes());
        if let Some(path) = &a.metrics_out {
            let path = if multi {
                suffixed(path, &name)
            } else {
                path.clone()
            };
            std::fs::write(&path, jsonl).map_err(|e| format!("{path}: {e}"))?;
            println!("  metrics samples -> {path}");
        }
    }
    if let Some(path) = &a.manifest_out {
        let wall = host.wall_ns();
        host.record_throughput(sim_cycles, retired, wall);
        host.record_jobs(
            a.jobs as u64,
            ParallelRunner::new(a.jobs).jobs() as u64,
            &[],
        );
        let mut config = faulted_config(
            &a.workloads,
            a.seed,
            a.faults,
            a.threads,
            a.scale,
            a.checkpoints,
            a.scheme,
        );
        config.push(("sample_interval".to_owned(), a.sample_interval.to_string()));
        config.push(("detail".to_owned(), a.detail.to_string()));
        let m = Manifest {
            command: "trace".to_owned(),
            config,
            sim_hashes,
            metrics_digest: metrics_digest.finish(),
            host: host.finish(),
            bench: None,
        };
        write_manifest(path, &m)?;
        println!("manifest -> {path}");
    }
    Ok(ExitCode::SUCCESS)
}

struct ProfileArgs {
    workloads: Vec<Benchmark>,
    seed: u64,
    faults: u32,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    scheme: Scheme,
    flame_out: String,
    ledger_out: String,
    trace_out: Option<String>,
    top: usize,
    jobs: usize,
    manifest_out: Option<String>,
}

impl Default for ProfileArgs {
    fn default() -> Self {
        ProfileArgs {
            workloads: vec![Benchmark::Cg],
            seed: 42,
            faults: 1,
            threads: 2,
            scale: 0.05,
            checkpoints: 12,
            scheme: Scheme::GlobalCoordinated,
            flame_out: "run.folded".to_owned(),
            ledger_out: "run.ledger.txt".to_owned(),
            trace_out: None,
            top: 10,
            jobs: 0,
            manifest_out: None,
        }
    }
}

fn parse_profile(args: &[String]) -> Result<ProfileArgs, String> {
    let mut out = ProfileArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--workload" => out.workloads = parse_workloads(value)?,
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => {
                out.faults = value.parse().map_err(|e| format!("--faults: {e}"))?;
                if out.faults == 0 {
                    return Err("--faults must be positive".into());
                }
            }
            "--threads" => {
                out.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scale" => out.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--checkpoints" => {
                out.checkpoints = value.parse().map_err(|e| format!("--checkpoints: {e}"))?;
            }
            "--scheme" => {
                out.scheme = match value.as_str() {
                    "global" => Scheme::GlobalCoordinated,
                    "local" => Scheme::LocalCoordinated,
                    other => return Err(format!("unknown scheme `{other}`")),
                };
            }
            "--flame-out" => out.flame_out = value.clone(),
            "--ledger-out" => out.ledger_out = value.clone(),
            "--trace-out" => out.trace_out = Some(value.clone()),
            "--top" => out.top = value.parse().map_err(|e| format!("--top: {e}"))?,
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--manifest-out" => out.manifest_out = Some(value.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok(out)
}

/// Sanitizes a region label for the collapsed-stack format (frames are
/// `;`-separated, samples end at the first space).
fn flame_frame(label: &str) -> String {
    label.replace([';', ' '], "_")
}

/// Renders the per-PC profile as collapsed stacks:
/// `workload;tN;region;class;pc_0x… ticks`, one line per attribution
/// site, in `(core, pc)` order — loadable in speedscope or inferno.
fn collapsed_stacks(
    workload: &str,
    program: &acr_isa::Program,
    prof: &acr_sim::PcProfile,
) -> String {
    let mut out = String::new();
    for ((core, pc), c) in prof.iter() {
        if c.ticks == 0 {
            continue;
        }
        let region = flame_frame(program.label_at(*core, *pc).unwrap_or("code"));
        let class = if c.mem_ticks > 0 { "mem" } else { "cpu" };
        let _ = writeln!(
            out,
            "{workload};t{core};{region};{class};pc_0x{pc:x} {}",
            c.ticks
        );
    }
    out
}

/// Renders the omission-decision ledger as a deterministic text report:
/// reason totals, the per-4-KiB-range split, per-Slice omission counts and
/// per-Slice replay cost (cycles plus pJ from the energy model).
fn ledger_report(
    workload: &str,
    seed: u64,
    ledger: &acr_ckpt::DecisionLedger,
    energy: &acr_energy::EnergyModel,
) -> String {
    let mut out = String::new();
    let total = ledger.total_decisions();
    let _ = writeln!(out, "# omission-decision ledger: {workload} seed {seed}");
    let _ = writeln!(
        out,
        "decisions {total}  logged {}  omitted {}",
        ledger.total_logged(),
        ledger.total_omitted()
    );
    for reason in OmitReason::ALL {
        let n = ledger.total(reason);
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * n as f64 / total as f64
        };
        let _ = writeln!(out, "  {:<24} {n:>10}  {pct:>5.1}%", reason.code());
    }
    let _ = writeln!(
        out,
        "# per 4 KiB range: base {}",
        OmitReason::ALL.map(OmitReason::code).join(" ")
    );
    for (base, counts) in ledger.ranges() {
        let _ = write!(out, "range {base:#012x}");
        for n in counts {
            let _ = write!(out, " {n}");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "# per-slice omissions");
    for (slice, n) in ledger.per_slice() {
        let _ = writeln!(out, "slice {} omitted {n}", slice.0);
    }
    let _ = writeln!(out, "# per-slice replay cost");
    for (slice, rc) in ledger.replays() {
        let pj = rc.alu_ops as f64 * energy.alu_pj + rc.opbuf_reads as f64 * energy.opbuf_pj;
        let _ = writeln!(
            out,
            "slice {} replays {} cycles {} alu {} opbuf {} energy_pj {pj:.1}",
            slice.0, rc.replays, rc.cycles, rc.alu_ops, rc.opbuf_reads
        );
    }
    out
}

fn profile(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_profile(args)?;
    let multi = a.workloads.len() > 1;
    let items: Vec<FaultedSweepItem> = a
        .workloads
        .iter()
        .map(|&bench| FaultedSweepItem {
            name: bench.name().to_owned(),
            program: generate(
                bench,
                &WorkloadConfig::default()
                    .with_threads(a.threads)
                    .with_scale(a.scale),
            ),
        })
        .collect();
    let tracing = a.trace_out.is_some();
    let mut host = HostPerf::start();
    let mut sim_hashes: Vec<(String, u64)> = Vec::new();
    let mut metrics_digest = Fnv1a::new();
    let mut sim_cycles = 0u64;
    let mut retired = 0u64;
    let outcomes = host.time("sweep", || {
        run_faulted_sweep(
            &items,
            a.jobs,
            tracing.then_some(false),
            |item| {
                let bench =
                    Benchmark::from_name(&item.name).expect("items are built from benchmarks");
                let spec = ExperimentSpec::default()
                    .with_cores(a.threads)
                    .with_checkpoints(a.checkpoints)
                    .with_threshold(bench.default_threshold())
                    .with_scheme(a.scheme)
                    .with_profile(true);
                if tracing {
                    spec.with_sample_interval(5000)
                } else {
                    spec
                }
            },
            |_, total| planned_faults(a.seed, a.faults, total, a.threads),
        )
    });

    let energy = acr_energy::EnergyModel::default();
    for o in outcomes {
        let name = o.name;
        let run = o.run.map_err(|e| format!("{name}: {e}"))?;
        let result = &run.result;
        let iprog = &run.instrumented;
        let prof = result.profile.as_ref().expect("profiling was enabled");
        let ledger = result.ledger.as_ref().expect("profiling was enabled");
        let (logged, omitted) = result.log_totals.expect("profiling was enabled");

        // Conservation: the ledger classified every first-update decision,
        // and its logged/omitted split matches the log controller's word
        // totals. A violation is an attribution bug, not a user error.
        assert_eq!(
            ledger.total_decisions(),
            logged + omitted,
            "ledger decisions must equal words logged + omitted"
        );
        assert_eq!(ledger.total_omitted(), omitted);

        let flame_out = if multi {
            suffixed(&a.flame_out, &name)
        } else {
            a.flame_out.clone()
        };
        let ledger_out = if multi {
            suffixed(&a.ledger_out, &name)
        } else {
            a.ledger_out.clone()
        };
        let flame = collapsed_stacks(&name, iprog, prof);
        std::fs::write(&flame_out, &flame).map_err(|e| format!("{flame_out}: {e}"))?;
        let ledger_txt = ledger_report(&name, a.seed, ledger, &energy);
        std::fs::write(&ledger_out, &ledger_txt).map_err(|e| format!("{ledger_out}: {e}"))?;
        host.add_phase_ns(&name, o.host_ns);
        sim_cycles += result.cycles;
        retired += result.sim.retired;
        sim_hashes.push((format!("{name}.flame"), fnv1a(flame.as_bytes())));
        sim_hashes.push((format!("{name}.ledger"), fnv1a(ledger_txt.as_bytes())));
        metrics_digest.write(flame.as_bytes());
        metrics_digest.write(ledger_txt.as_bytes());

        println!(
            "profiled {} ({}): {} cycles, {} attribution sites, {} retires",
            name,
            result.label,
            result.cycles,
            prof.len(),
            prof.total_retires(),
        );
        let (p50, p90, p99) = prof.tick_histogram().digest();
        println!("  retire ticks p50 {p50} p90 {p90} p99 {p99}");
        println!(
            "  decisions {}: {} omitted, {} logged",
            ledger.total_decisions(),
            omitted,
            logged
        );

        // Hottest sites by attributed ticks (ties broken by site order).
        let mut sites: Vec<_> = prof.iter().collect();
        sites.sort_by(|a, b| b.1.ticks.cmp(&a.1.ticks).then(a.0.cmp(b.0)));
        println!(
            "  {:<5} {:<10} {:<16} {:>9} {:>9} {:>8} {:>8}",
            "core", "pc", "region", "retires", "ticks", "mem", "stall"
        );
        for ((core, pc), c) in sites.into_iter().take(a.top) {
            println!(
                "  {core:<5} {:<10} {:<16} {:>9} {:>9} {:>8} {:>8}",
                format!("0x{pc:x}"),
                iprog.label_at(*core, *pc).unwrap_or("code"),
                c.retires,
                c.ticks,
                c.mem_ticks,
                c.stall_ticks
            );
        }
        println!("  flamegraph -> {flame_out}");
        println!("  ledger -> {ledger_out}");

        if let Some(path) = &a.trace_out {
            let path = if multi {
                suffixed(path, &name)
            } else {
                path.clone()
            };
            let report = result.report.as_ref().expect("engine runs carry a report");
            let mut recorded = run.events.clone();
            // Ledger reason totals as one counter track per reason, stamped
            // at the end of the run, plus the retire-latency digest.
            for reason in OmitReason::ALL {
                recorded.push(
                    TraceEvent::counter(reason.code(), "ledger", TRACK_ENGINE, result.cycles)
                        .with_arg("words", ledger.total(reason)),
                );
            }
            recorded.push(
                TraceEvent::counter(
                    "profile.retire.ticks",
                    "profile",
                    TRACK_ENGINE,
                    result.cycles,
                )
                .with_arg("p50", p50)
                .with_arg("p90", p90)
                .with_arg("p99", p99),
            );
            let json = chrome_trace_json(&recorded, Some(&report.series));
            std::fs::write(&path, &json).map_err(|e| format!("{path}: {e}"))?;
            println!("  trace -> {path}");
        }
    }
    if let Some(path) = &a.manifest_out {
        let wall = host.wall_ns();
        host.record_throughput(sim_cycles, retired, wall);
        host.record_jobs(
            a.jobs as u64,
            ParallelRunner::new(a.jobs).jobs() as u64,
            &[],
        );
        let m = Manifest {
            command: "profile".to_owned(),
            config: faulted_config(
                &a.workloads,
                a.seed,
                a.faults,
                a.threads,
                a.scale,
                a.checkpoints,
                a.scheme,
            ),
            sim_hashes,
            metrics_digest: metrics_digest.finish(),
            host: host.finish(),
            bench: None,
        };
        write_manifest(path, &m)?;
        println!("manifest -> {path}");
    }
    Ok(ExitCode::SUCCESS)
}

struct BenchArgs {
    /// The campaign to time — every inject option applies, with
    /// `--faults` defaulting to 200 (the reference campaign whose
    /// hashes the golden tests pin) instead of 1000.
    inject: InjectArgs,
    name: String,
    reps: u32,
    warmup: u32,
    out: Option<String>,
}

fn parse_bench(args: &[String]) -> Result<BenchArgs, String> {
    let mut name = "ref".to_owned();
    let mut reps = 5u32;
    let mut warmup = 1u32;
    let mut out = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--name" | "--reps" | "--warmup" | "--out" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                match flag {
                    "--name" => name = value.clone(),
                    "--reps" => {
                        reps = value.parse().map_err(|e| format!("--reps: {e}"))?;
                        if reps == 0 {
                            return Err("--reps must be positive".into());
                        }
                    }
                    "--warmup" => warmup = value.parse().map_err(|e| format!("--warmup: {e}"))?,
                    _ => out = Some(value.clone()),
                }
                i += 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    let had_faults = rest.iter().any(|s| s == "--faults");
    let mut inject = parse_inject(&rest)?;
    if !had_faults {
        inject.faults = 200;
    }
    Ok(BenchArgs {
        inject,
        name,
        reps,
        warmup,
        out,
    })
}

fn bench(args: &[String]) -> Result<ExitCode, String> {
    let b = parse_bench(args)?;
    let a = &b.inject;
    let items = campaign_items(a);
    let spec_for = |item: &CampaignSweepItem| {
        let bench = Benchmark::from_name(&item.name).expect("items are built from benchmarks");
        ExperimentSpec::default()
            .with_cores(a.threads)
            .with_threshold(bench.default_threshold())
    };
    let run_items = |items: &[CampaignSweepItem]| -> Result<SweepDigest, String> {
        let outcomes = run_campaign_sweep(items, a.jobs, spec_for);
        let mut digest = SweepDigest::new();
        let mut merged = MetricsRegistry::new();
        for o in outcomes {
            let name = o.name;
            let run = o.run.map_err(|e| format!("{name}: {e}"))?;
            digest.fold(&name, &run, &mut merged);
        }
        Ok(digest)
    };
    let run_once = || run_items(&items);

    let mut host = HostPerf::start();
    println!(
        "benchmark {}: faults {} workloads {} jobs {} — {} warmup + {} timed reps",
        b.name,
        a.faults,
        a.workloads
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(","),
        a.jobs,
        b.warmup,
        b.reps
    );
    for _ in 0..b.warmup {
        host.time("warmup", run_once)?;
    }

    let mut samples = Vec::with_capacity(b.reps as usize);
    let mut loads: Vec<WorkerLoad> = Vec::new();
    let mut reference: Option<SweepDigest> = None;
    for rep in 0..b.reps {
        let sw = Stopwatch::start();
        let digest = run_once()?;
        let ns = sw.elapsed_ns();
        host.add_phase_ns("reps", ns);
        samples.push(ns);
        println!(
            "  rep {}/{}: {:.3} s  combined {:#018x}",
            rep + 1,
            b.reps,
            ns as f64 / 1e9,
            digest.combined()
        );
        merge_loads(&mut loads, &digest.loads);
        match &reference {
            // The timed campaign must be deterministic or the numbers
            // mean nothing: every rep re-proves the sim section.
            Some(r) if r.hashes != digest.hashes || r.digest != digest.digest => {
                return Err(
                    "nondeterministic campaign: sim hashes differ across repetitions".into(),
                );
            }
            Some(_) => {}
            None => reference = Some(digest),
        }
    }
    let reference = reference.expect("--reps is positive");
    let stats = BenchStats::from_samples(&samples, u64::from(b.warmup));
    println!(
        "  median {:.3} s  mad {:.3} s  min {:.3} s",
        stats.median_ns as f64 / 1e9,
        stats.mad_ns as f64 / 1e9,
        stats.min_ns as f64 / 1e9
    );

    // Recorder-overhead phase: the flight recorder rides along on every
    // fault case by default, so re-time the identical campaign with the
    // rings detached. The recorder is purely observational — the hashes
    // must not move — and the median split quantifies its host cost
    // (budgeted under 1 % on the reference campaign).
    let mut off_items = items.clone();
    for it in &mut off_items {
        it.campaign.recorder = false;
    }
    let mut off_samples = Vec::with_capacity(b.reps as usize);
    for _ in 0..b.reps {
        let sw = Stopwatch::start();
        let digest = run_items(&off_items)?;
        let ns = sw.elapsed_ns();
        host.add_phase_ns("recorder_off", ns);
        off_samples.push(ns);
        if digest.hashes != reference.hashes || digest.digest != reference.digest {
            return Err(
                "flight recorder perturbed the campaign: recorder-off sim hashes differ".into(),
            );
        }
    }
    let off = BenchStats::from_samples(&off_samples, 0);
    let overhead_pct = if off.median_ns == 0 {
        0.0
    } else {
        100.0 * (stats.median_ns as f64 - off.median_ns as f64) / off.median_ns as f64
    };
    println!(
        "  recorder overhead {overhead_pct:+.2}% (median {:.3} s on vs {:.3} s off; \
         hashes identical)",
        stats.median_ns as f64 / 1e9,
        off.median_ns as f64 / 1e9
    );

    // Throughput is per *repetition* (median), not per total wall time,
    // so it is comparable across different --reps choices.
    host.record_throughput(reference.sim_cycles, reference.retired, stats.median_ns);
    host.record_jobs(
        a.jobs as u64,
        ParallelRunner::new(a.jobs).jobs() as u64,
        &loads,
    );
    let m = Manifest {
        command: "bench".to_owned(),
        config: inject_config(a),
        sim_hashes: reference.sim_hashes(),
        metrics_digest: reference.digest,
        host: host.finish(),
        bench: Some(stats),
    };
    let out_path = b.out.unwrap_or_else(|| format!("BENCH_{}.json", b.name));
    write_manifest(&out_path, &m)?;
    println!("manifest -> {out_path}");
    if let Some(path) = &a.manifest_out {
        write_manifest(path, &m)?;
        println!("manifest -> {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn diff(args: &[String]) -> Result<ExitCode, String> {
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--tolerance-pct" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                opts.tolerance_pct = value.parse().map_err(|e| format!("--tolerance-pct: {e}"))?;
                if opts.tolerance_pct.is_nan() || opts.tolerance_pct < 0.0 {
                    return Err("--tolerance-pct must be non-negative".into());
                }
                i += 2;
            }
            "--host-gate" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                (opts.gate_host, opts.gate_tput) = match value.as_str() {
                    "on" => (true, false),
                    "off" => (false, false),
                    // Perf-gate mode: wall time stays report-only (noisy
                    // on shared runners), but a drop in simulated cycles
                    // per host second beyond the tolerance fails.
                    "tput" => (false, true),
                    other => return Err(format!("--host-gate takes on|off|tput, got `{other}`")),
                };
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            _ => {
                paths.push(args[i].clone());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        return Err(format!(
            "diff takes exactly two manifest paths, got {}",
            paths.len()
        ));
    }
    let read = |path: &str| -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Manifest::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(&paths[0])?;
    let candidate = read(&paths[1])?;
    let report = diff_manifests(&baseline, &candidate, &opts);
    print!("{}", report.render());
    Ok(if report.failed() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Object member as a string (`"?"` for absent or mistyped keys — the
/// renderer degrades instead of erroring on a hand-edited bundle).
fn jstr<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("?")
}

/// Object member as an unsigned integer (0 when absent).
fn jnum(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Object member as a bool (false when absent).
fn jbool(j: &Json, key: &str) -> bool {
    matches!(j.get(key), Some(Json::Bool(true)))
}

/// Merged flight-recorder timeline lines. Within-ring order is already
/// chronological, so the stable sort by `(cycle, track)` interleaves the
/// rings without reordering equal-cycle events of one core.
fn explain_timeline(rings: &[Json]) -> (Vec<String>, u64) {
    let mut dropped = 0u64;
    let mut events: Vec<(u64, u64, String)> = Vec::new();
    for ring in rings {
        dropped += jnum(ring, "dropped");
        for ev in ring
            .get("events")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let (cycle, track) = (jnum(ev, "cycle"), jnum(ev, "track"));
            let mut line = format!(
                "[{cycle:>10}] t{track:<4} {} ({}/{})",
                jstr(ev, "name"),
                jstr(ev, "cat"),
                jstr(ev, "kind"),
            );
            if jnum(ev, "dur") > 0 {
                let _ = write!(line, " dur {}", jnum(ev, "dur"));
            }
            if let Some(Json::Obj(args)) = ev.get("args") {
                for (k, v) in args {
                    let _ = write!(line, " {k}={}", v.as_u64().unwrap_or(0));
                }
            }
            events.push((cycle, track, line));
        }
    }
    events.sort_by_key(|e| (e.0, e.1));
    (events.into_iter().map(|(_, _, l)| l).collect(), dropped)
}

/// Renders a postmortem bundle as a human-readable triage report: header,
/// fault chain, machine digest, invariant tallies, escalation ladder, log
/// tail, the merged flight-recorder timeline, and the probable-cause
/// classification. Exits 0 whenever the bundle parses.
fn explain(args: &[String]) -> Result<ExitCode, String> {
    let path = match args {
        [p] if !p.starts_with("--") => p.as_str(),
        _ => return Err("explain takes exactly one postmortem bundle path".into()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let j = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = jstr(&j, "schema");
    if schema != POSTMORTEM_SCHEMA {
        return Err(format!(
            "{path}: unknown bundle schema `{schema}` (expected {POSTMORTEM_SCHEMA})"
        ));
    }

    let workload = jstr(&j, "workload");
    println!(
        "== postmortem: {} case {} — {} ==",
        if workload.is_empty() { "?" } else { workload },
        jnum(&j, "case"),
        jstr(&j, "trigger")
    );
    println!(
        "  seed {}  outcome {}",
        jnum(&j, "seed"),
        jstr(&j, "outcome")
    );
    if let Some(f) = j.get("fault") {
        println!(
            "  fault: {} ({}) on core {}, planned at progress {}, landed at cycle {}",
            jstr(f, "kind"),
            jstr(f, "detail"),
            jnum(f, "core"),
            jnum(f, "at_progress"),
            jnum(f, "landing_cycle")
        );
    }
    match j.get("recovery_fault") {
        Some(Json::Str(s)) => println!("  recovery fault: {s}"),
        _ => println!("  recovery fault: none"),
    }
    if let Some(m) = j.get("machine") {
        println!(
            "  machine: {} cycles, {} retired, mem fnv {}",
            jnum(m, "cycles"),
            jnum(m, "final_retired"),
            jstr(m, "mem_fnv")
        );
        println!(
            "  divergence: {} mem, {} reg, {} shadow words",
            jnum(m, "mem_divergence"),
            jnum(m, "reg_divergence"),
            jnum(m, "shadow_divergence")
        );
    }
    if let Some(l) = j.get("log") {
        println!(
            "  log: {} words logged, {} omitted over the case lifetime",
            jnum(l, "lifetime_logged"),
            jnum(l, "lifetime_omitted")
        );
        let tail = l
            .get("intervals_tail")
            .and_then(Json::as_arr)
            .unwrap_or_default();
        if !tail.is_empty() {
            println!(
                "  interval tail (last {}, {} earlier dropped):",
                tail.len(),
                jnum(l, "intervals_dropped")
            );
            for iv in tail {
                println!(
                    "    epoch {:>4}: progress {} records {} omitted {} bytes {} stall {}",
                    jnum(iv, "epoch"),
                    jnum(iv, "progress"),
                    jnum(iv, "records"),
                    jnum(iv, "omitted"),
                    jnum(iv, "bytes"),
                    jnum(iv, "stall_cycles")
                );
            }
        }
    }
    if let Some(inv) = j.get("invariants") {
        println!("  invariants: {} breaches", jnum(inv, "breaches"));
        if let Some(Json::Obj(monitors)) = inv.get("monitors") {
            for (name, m) in monitors {
                println!(
                    "    {name:<24} {} checks, {} breaches",
                    jnum(m, "checks"),
                    jnum(m, "breaches")
                );
            }
        }
        if let Some(fb) = inv.get("first_breach") {
            if !matches!(fb, Json::Null) {
                println!(
                    "    first breach: {} at epoch {} cycle {}: {}",
                    jstr(fb, "monitor"),
                    jnum(fb, "epoch"),
                    jnum(fb, "cycle"),
                    jstr(fb, "detail")
                );
            }
        }
    }
    if let Some(esc) = j.get("escalation") {
        let steps = esc.get("steps").and_then(Json::as_arr).unwrap_or_default();
        println!(
            "  escalation: {} recoveries, {} ladder exhaustions",
            steps.len(),
            jnum(esc, "exhausted")
        );
        for s in steps {
            println!(
                "    detected at cycle {}: safe epoch {}, {} re-replays, \
                 {} generation fallbacks, degraded {}",
                jnum(s, "detected_at_cycles"),
                jnum(s, "safe_epoch"),
                jnum(s, "replay_retries"),
                jnum(s, "generation_fallbacks"),
                jbool(s, "degraded_entered")
            );
        }
    }
    let rings = j.get("rings").and_then(Json::as_arr).unwrap_or_default();
    if rings.is_empty() {
        println!("  timeline: no flight-recorder rings captured");
    } else {
        const SHOW: usize = 80;
        let (lines, dropped) = explain_timeline(rings);
        let skip = lines.len().saturating_sub(SHOW);
        let suffix = if skip > 0 {
            format!(", showing last {SHOW}")
        } else {
            String::new()
        };
        println!(
            "  timeline: {} events retained across {} rings \
             ({dropped} older events dropped){suffix}",
            lines.len(),
            rings.len()
        );
        for line in lines.iter().skip(skip) {
            println!("    {line}");
        }
    }
    println!("  probable cause: {}", jstr(&j, "probable_cause"));
    let repro = jstr(&j, "repro");
    if !repro.is_empty() && repro != "?" {
        println!("  repro: {repro}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // One dispatcher, one error path: every subcommand returns
    // `Result<ExitCode, String>`; any `Err` prints a single `error: …`
    // line on stderr and exits 2 (usage/config), while gate failures
    // (inject divergence/abort, diff regression) exit 1 via `Ok`.
    let result = match args.first().map(String::as_str) {
        Some("inject") => inject(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("soak") => soak(&args[1..]),
        Some("shrink") => shrink(&args[1..]),
        Some("workloads") => {
            for b in Benchmark::ALL {
                println!("{}", b.name());
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("help" | "-h" | "--help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `acr_cli help`)")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
