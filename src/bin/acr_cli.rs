//! `acr_cli` — command-line front end for the ACR reproduction.
//!
//! The `inject` subcommand runs a deterministic fault-injection and
//! recovery-verification campaign over the bundled workloads: same seed,
//! byte-identical output. The `trace` subcommand runs one ACR execution
//! under injected recoverable faults with the trace sink attached and
//! exports a Chrome `trace_event` JSON (loadable in Perfetto /
//! `chrome://tracing`) plus optional interval-sampled metrics as JSONL.
//! The `profile` subcommand runs the same faulted execution with the
//! attribution profiler and the omission-decision ledger attached and
//! exports a collapsed-stack flamegraph (speedscope / inferno) plus a
//! ledger text report — byte-identical for a given seed.

use std::fmt::Write as _;
use std::process::ExitCode;

use acr::{
    run_campaign_sweep, run_faulted_sweep, CampaignSweepItem, ExperimentSpec, FaultedSweepItem,
};
use acr_ckpt::{CampaignConfig, CaseOutcome, OmitReason, Scheme};
use acr_mem::CoreId;
use acr_sim::{Fault, FaultKind, FaultKindSet};
use acr_trace::{chrome_trace_json, TraceEvent, TRACK_ENGINE};
use acr_workloads::{generate, Benchmark, WorkloadConfig};

const USAGE: &str = "\
acr_cli — ACR (Amnesic Checkpointing and Recovery) reproduction driver

USAGE:
    acr_cli inject [OPTIONS]     run a deterministic fault-injection campaign
    acr_cli trace [OPTIONS]      trace one ACR run under injected faults
    acr_cli profile [OPTIONS]    attribution-profile one ACR run: per-PC cycle
                                 accounting, omission-decision ledger,
                                 flamegraph export
    acr_cli workloads            list the bundled workloads
    acr_cli help                 show this message

INJECT OPTIONS:
    --seed N          campaign seed (default 42)
    --faults N        total faults, split across the workloads (default 1000)
    --workloads LIST  comma-separated workload names (default is,cg,mg)
    --threads N       cores == threads (default 4)
    --scale F         workload scale factor (default 0.05)
    --checkpoints N   checkpoints per nominal run (default 12)
    --latency F       detection latency / checkpoint period (default 0.5)
    --kinds SET       all | recoverable | comma list of reg,pc,mem,crash
                      (default recoverable)
    --policy P        acr | baseline (default acr)
    --scheme S        global | local (default global)
    --csv DIR         also write per-case CSVs into DIR
    --metrics-out F   write the fault-free baseline's interval metrics
                      samples to F as JSONL
    --sample-interval N
                      metrics sampling interval in cycles (default 5000
                      when --metrics-out is given, else off)
    --recovery-faults additionally strike each case's first recovery with
                      a deterministic recovery-window fault (torn record,
                      flipped restored word, corrupt replay, crash
                      mid-restore, torn commit) and report the engine's
                      escalation histogram (global scheme only)
    --generations N   checkpoint generations retained as rollback
                      fallbacks (default 1; at least 2 with
                      --recovery-faults)
    --jobs N          worker threads sharding the campaign (0 = auto:
                      ACR_JOBS env, else available parallelism; default
                      auto). Output is byte-identical for every value
    --progress        print one line per fault case; lines are buffered
                      per shard and flushed in case order, so the output
                      is also jobs-invariant

TRACE OPTIONS:
    --workload W      workload(s) to trace, comma-separated (default cg);
                      with several, each output file gains a .<name>
                      suffix before its extension
    --jobs N          worker threads across workloads (0 = auto: ACR_JOBS
                      env, else available parallelism; default auto)
    --out FILE        Chrome trace_event JSON output (default run.trace.json)
    --metrics-out F   also write the metrics samples to F as JSONL
    --sample-interval N
                      metrics sampling interval in cycles (default 5000)
    --seed N          fault-placement seed (default 42)
    --faults N        recoverable register faults to inject (default 1)
    --threads N       cores == threads (default 2)
    --scale F         workload scale factor (default 0.05)
    --checkpoints N   checkpoints per nominal run (default 12)
    --scheme S        global | local (default global)
    --detail FLAG     on | off — per-store/assoc/miss instants (default off)

PROFILE OPTIONS:
    --workload W      workload(s) to profile, comma-separated (default
                      cg); with several, each output file gains a .<name>
                      suffix before its extension
    --jobs N          worker threads across workloads (0 = auto: ACR_JOBS
                      env, else available parallelism; default auto)
    --seed N          fault-placement seed (default 42)
    --faults N        recoverable register faults to inject (default 1)
    --threads N       cores == threads (default 2)
    --scale F         workload scale factor (default 0.05)
    --checkpoints N   checkpoints per nominal run (default 12)
    --scheme S        global | local (default global)
    --flame-out F     collapsed-stack flamegraph output, loadable in
                      speedscope / inferno (default run.folded)
    --ledger-out F    omission-decision ledger text output
                      (default run.ledger.txt)
    --trace-out F     also write a Chrome trace with the profile and
                      ledger counter tracks appended
    --top N           hottest attribution sites to print (default 10)

Every quantity the campaign reports is derived from the seeded plan and
the deterministic simulator — two invocations with the same options
produce byte-identical output (the content hash makes that checkable,
and `cmp` on two same-seed trace files does too).
";

struct InjectArgs {
    seed: u64,
    faults: u32,
    workloads: Vec<Benchmark>,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    latency: f64,
    kinds: FaultKindSet,
    amnesic: bool,
    scheme: Scheme,
    csv_dir: Option<String>,
    metrics_out: Option<String>,
    sample_interval: u64,
    recovery_faults: bool,
    generations: u32,
    jobs: usize,
    progress: bool,
}

impl Default for InjectArgs {
    fn default() -> Self {
        InjectArgs {
            seed: 42,
            faults: 1000,
            workloads: vec![Benchmark::Is, Benchmark::Cg, Benchmark::Mg],
            threads: 4,
            scale: 0.05,
            checkpoints: 12,
            latency: 0.5,
            kinds: FaultKindSet::recoverable(),
            amnesic: true,
            scheme: Scheme::GlobalCoordinated,
            csv_dir: None,
            metrics_out: None,
            sample_interval: 0,
            recovery_faults: false,
            generations: 1,
            jobs: 0,
            progress: false,
        }
    }
}

fn parse_inject(args: &[String]) -> Result<InjectArgs, String> {
    let mut out = InjectArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        // Valueless flags first — everything else takes a value.
        if flag == "--recovery-faults" {
            out.recovery_faults = true;
            i += 1;
            continue;
        }
        if flag == "--progress" {
            out.progress = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => {
                out.faults = value.parse().map_err(|e| format!("--faults: {e}"))?;
                if out.faults == 0 {
                    return Err("--faults must be positive".into());
                }
            }
            "--workloads" => {
                out.workloads = value
                    .split(',')
                    .map(|n| {
                        Benchmark::from_name(n.trim())
                            .ok_or_else(|| format!("unknown workload `{n}`"))
                    })
                    .collect::<Result<_, _>>()?;
                if out.workloads.is_empty() {
                    return Err("--workloads must name at least one workload".into());
                }
            }
            "--threads" => {
                out.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scale" => out.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--checkpoints" => {
                out.checkpoints = value.parse().map_err(|e| format!("--checkpoints: {e}"))?;
            }
            "--latency" => {
                out.latency = value.parse().map_err(|e| format!("--latency: {e}"))?;
                if !(0.0..=1.0).contains(&out.latency) {
                    return Err("--latency must be within [0, 1]".into());
                }
            }
            "--kinds" => out.kinds = FaultKindSet::parse(value)?,
            "--policy" => {
                out.amnesic = match value.as_str() {
                    "acr" => true,
                    "baseline" => false,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--scheme" => {
                out.scheme = match value.as_str() {
                    "global" => Scheme::GlobalCoordinated,
                    "local" => Scheme::LocalCoordinated,
                    other => return Err(format!("unknown scheme `{other}`")),
                };
            }
            "--csv" => out.csv_dir = Some(value.clone()),
            "--metrics-out" => out.metrics_out = Some(value.clone()),
            "--sample-interval" => {
                out.sample_interval = value
                    .parse()
                    .map_err(|e| format!("--sample-interval: {e}"))?;
            }
            "--generations" => {
                out.generations = value.parse().map_err(|e| format!("--generations: {e}"))?;
                if out.generations == 0 {
                    return Err("--generations must be positive".into());
                }
            }
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    if out.metrics_out.is_some() && out.sample_interval == 0 {
        out.sample_interval = 5000;
    }
    Ok(out)
}

fn inject(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_inject(args)?;
    if let Some(dir) = &a.csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("--csv {dir}: {e}"))?;
    }

    let n = a.workloads.len() as u32;
    let base_count = a.faults / n;
    let remainder = a.faults % n;

    let mut injected = 0u64;
    let mut detected = 0u64;
    let mut recovered = 0u64;
    let mut diverged = 0u64;
    let mut aborted = 0u64;
    let mut divergent_words = 0u64;
    let mut recovery_cycles = 0u64;
    let mut recovery_energy = 0.0f64;
    let mut replay_retries = 0u64;
    let mut generation_fallbacks = 0u64;
    let mut degraded_entries = 0u64;
    let mut combined_hash = 0xcbf2_9ce4_8422_2325u64;
    let mut metrics_jsonl = String::new();

    // One sweep item per workload; the sweep shards --jobs workers over
    // workloads first and hands any surplus down as per-case campaign
    // shards. Every byte below is identical for every jobs value.
    let items: Vec<CampaignSweepItem> = a
        .workloads
        .iter()
        .enumerate()
        .filter_map(|(i, &bench)| {
            let count = base_count + u32::from((i as u32) < remainder);
            if count == 0 {
                return None;
            }
            Some(CampaignSweepItem {
                name: bench.name().to_owned(),
                program: generate(
                    bench,
                    &WorkloadConfig::default()
                        .with_threads(a.threads)
                        .with_scale(a.scale),
                ),
                campaign: CampaignConfig {
                    seed: a.seed.wrapping_add(i as u64),
                    count,
                    kinds: a.kinds,
                    num_checkpoints: a.checkpoints,
                    detection_latency_frac: a.latency,
                    scheme: a.scheme,
                    sample_interval: a.sample_interval,
                    recovery_faults: a.recovery_faults,
                    generations: a.generations,
                    progress: a.progress,
                    ..CampaignConfig::default()
                },
                amnesic: a.amnesic,
            })
        })
        .collect();

    let outcomes = run_campaign_sweep(&items, a.jobs, |item| {
        let bench = Benchmark::from_name(&item.name).expect("items are built from benchmarks");
        ExperimentSpec::default()
            .with_cores(a.threads)
            .with_threshold(bench.default_threshold())
    });

    for o in outcomes {
        let name = o.name;
        let run = o.run.map_err(|e| format!("{name}: {e}"))?;
        let r = &run.report;

        println!("== {} ({}) ==", name, run.label);
        if a.progress {
            print!("{}", r.case_log);
        }
        print!("{}", r.summary());
        println!(
            "  recovery energy {:.6e} J over {:.6e} s",
            run.recovery_energy_joules, run.recovery_seconds
        );
        for c in r
            .cases
            .iter()
            .filter(|c| c.outcome == CaseOutcome::Diverged)
        {
            println!(
                "  case {}: fault landed at cycle {}, recovery stalled {} cycles \
                 ({} words still divergent)",
                c.case,
                c.landing_cycle,
                c.recovery_stall_cycles,
                c.mem_divergence + c.reg_divergence
            );
        }
        if a.metrics_out.is_some() {
            metrics_jsonl.push_str(&r.baseline_series.to_jsonl(&[("workload", &name)]));
        }
        injected += r.injected();
        detected += r.detected();
        recovered += r.recovered();
        diverged += r.diverged();
        aborted += r.aborted();
        divergent_words += r.divergent_words();
        recovery_cycles += r.recovery_stall_cycles();
        recovery_energy += run.recovery_energy_joules;
        replay_retries += r.replay_retries();
        generation_fallbacks += r.generation_fallbacks();
        degraded_entries += r.degraded_entries();
        for b in r.content_hash().to_le_bytes() {
            combined_hash ^= u64::from(b);
            combined_hash = combined_hash.wrapping_mul(0x0100_0000_01b3);
        }

        if let Some(dir) = &a.csv_dir {
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, r.csv()).map_err(|e| format!("{path}: {e}"))?;
            println!("  cases written to {path}");
        }
    }

    println!("== campaign total ==");
    println!(
        "  injected {injected}  detected {detected}  recovered {recovered}  \
         diverged {diverged}  aborted {aborted}"
    );
    println!(
        "  state-divergence count {divergent_words}  recovery cycles {recovery_cycles}  \
         recovery energy {recovery_energy:.6e} J"
    );
    if a.recovery_faults {
        println!(
            "  escalation total: replay_retries {replay_retries}  \
             generation_fallbacks {generation_fallbacks}  \
             degraded_entries {degraded_entries}"
        );
    }
    if let Some(path) = &a.metrics_out {
        std::fs::write(path, &metrics_jsonl).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "  baseline metrics written to {path} (every {} cycles)",
            a.sample_interval
        );
    }
    println!("  combined hash {combined_hash:#018x}");
    Ok(if aborted == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

struct TraceArgs {
    workloads: Vec<Benchmark>,
    out: String,
    metrics_out: Option<String>,
    sample_interval: u64,
    seed: u64,
    faults: u32,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    scheme: Scheme,
    detail: bool,
    jobs: usize,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            workloads: vec![Benchmark::Cg],
            out: "run.trace.json".to_owned(),
            metrics_out: None,
            sample_interval: 5000,
            seed: 42,
            faults: 1,
            threads: 2,
            scale: 0.05,
            checkpoints: 12,
            scheme: Scheme::GlobalCoordinated,
            detail: false,
            jobs: 0,
        }
    }
}

/// Parses a comma-separated, non-empty workload list.
fn parse_workloads(value: &str) -> Result<Vec<Benchmark>, String> {
    let list: Vec<Benchmark> = value
        .split(',')
        .map(|n| Benchmark::from_name(n.trim()).ok_or_else(|| format!("unknown workload `{n}`")))
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err("--workload must name at least one workload".into());
    }
    Ok(list)
}

fn parse_trace(args: &[String]) -> Result<TraceArgs, String> {
    let mut out = TraceArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--workload" => out.workloads = parse_workloads(value)?,
            "--out" => out.out = value.clone(),
            "--metrics-out" => out.metrics_out = Some(value.clone()),
            "--sample-interval" => {
                out.sample_interval = value
                    .parse()
                    .map_err(|e| format!("--sample-interval: {e}"))?;
                if out.sample_interval == 0 {
                    return Err("--sample-interval must be positive".into());
                }
            }
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => {
                out.faults = value.parse().map_err(|e| format!("--faults: {e}"))?;
                if out.faults == 0 {
                    return Err("--faults must be positive".into());
                }
            }
            "--threads" => {
                out.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scale" => out.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--checkpoints" => {
                out.checkpoints = value.parse().map_err(|e| format!("--checkpoints: {e}"))?;
            }
            "--scheme" => {
                out.scheme = match value.as_str() {
                    "global" => Scheme::GlobalCoordinated,
                    "local" => Scheme::LocalCoordinated,
                    other => return Err(format!("unknown scheme `{other}`")),
                };
            }
            "--detail" => {
                out.detail = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--detail takes on|off, got `{other}`")),
                };
            }
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok(out)
}

/// Inserts `.{name}` before the final extension (`run.trace.json` →
/// `run.trace.cg.json`; extensionless paths get `.{name}` appended) —
/// how multi-workload trace/profile runs keep one output file per
/// workload.
fn suffixed(path: &str, name: &str) -> String {
    match path.rfind('.') {
        Some(i) if i > 0 && !path[i..].contains('/') => {
            format!("{}.{name}{}", &path[..i], &path[i..])
        }
        _ => format!("{path}.{name}"),
    }
}

/// Places `count` guaranteed-recoverable register faults deterministically
/// along the progress axis: evenly spaced, cores round-robin, register and
/// bit derived from the seed. No RNG — the same seed always yields the
/// same trace bytes.
fn planned_faults(seed: u64, count: u32, total: u64, threads: u32) -> Vec<Fault> {
    (0..u64::from(count))
        .map(|i| Fault {
            at_progress: total * (i + 1) / (u64::from(count) + 1),
            core: CoreId((i % u64::from(threads)) as u32),
            kind: FaultKind::RegBitFlip {
                reg: (4 + (seed.wrapping_add(i)) % 24) as u8,
                bit: ((seed.wrapping_mul(7).wrapping_add(i * 13)) % 64) as u8,
            },
        })
        .collect()
}

fn trace(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_trace(args)?;
    let multi = a.workloads.len() > 1;
    let items: Vec<FaultedSweepItem> = a
        .workloads
        .iter()
        .map(|&bench| FaultedSweepItem {
            name: bench.name().to_owned(),
            program: generate(
                bench,
                &WorkloadConfig::default()
                    .with_threads(a.threads)
                    .with_scale(a.scale),
            ),
        })
        .collect();
    let outcomes = run_faulted_sweep(
        &items,
        a.jobs,
        Some(a.detail),
        |item| {
            let bench = Benchmark::from_name(&item.name).expect("items are built from benchmarks");
            ExperimentSpec::default()
                .with_cores(a.threads)
                .with_checkpoints(a.checkpoints)
                .with_threshold(bench.default_threshold())
                .with_scheme(a.scheme)
                .with_sample_interval(a.sample_interval)
        },
        |_, total| planned_faults(a.seed, a.faults, total, a.threads),
    );

    for o in outcomes {
        let name = o.name;
        let run = o.run.map_err(|e| format!("{name}: {e}"))?;
        let result = &run.result;
        let report = result.report.as_ref().expect("engine runs carry a report");

        let out_path = if multi {
            suffixed(&a.out, &name)
        } else {
            a.out.clone()
        };
        let json = chrome_trace_json(&run.events, Some(&report.series));
        std::fs::write(&out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;

        println!(
            "traced {} ({}): {} cycles, {} checkpoints, {} faults injected, {} recoveries",
            name,
            result.label,
            result.cycles,
            report.checkpoints_taken,
            report.faults_injected,
            report.recoveries.len(),
        );
        for (i, rec) in report.recoveries.iter().enumerate() {
            let landed = report.fault_landing_cycles.get(i).copied().unwrap_or(0);
            println!(
                "  recovery {i}: fault landed at cycle {landed}, detected at cycle {}, \
                 stalled {} cycles ({} values recomputed by Slice replay)",
                rec.detected_at_cycles, rec.stall_cycles, rec.recomputed_values
            );
        }
        println!(
            "  {} trace events + {} metric samples (every {} cycles) -> {}",
            run.events.len(),
            report.series.samples().len(),
            a.sample_interval,
            out_path
        );
        if let Some(path) = &a.metrics_out {
            let path = if multi {
                suffixed(path, &name)
            } else {
                path.clone()
            };
            let jsonl = report
                .series
                .to_jsonl(&[("workload", &name), ("run", "reckpt_faulted")]);
            std::fs::write(&path, jsonl).map_err(|e| format!("{path}: {e}"))?;
            println!("  metrics samples -> {path}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

struct ProfileArgs {
    workloads: Vec<Benchmark>,
    seed: u64,
    faults: u32,
    threads: u32,
    scale: f64,
    checkpoints: u32,
    scheme: Scheme,
    flame_out: String,
    ledger_out: String,
    trace_out: Option<String>,
    top: usize,
    jobs: usize,
}

impl Default for ProfileArgs {
    fn default() -> Self {
        ProfileArgs {
            workloads: vec![Benchmark::Cg],
            seed: 42,
            faults: 1,
            threads: 2,
            scale: 0.05,
            checkpoints: 12,
            scheme: Scheme::GlobalCoordinated,
            flame_out: "run.folded".to_owned(),
            ledger_out: "run.ledger.txt".to_owned(),
            trace_out: None,
            top: 10,
            jobs: 0,
        }
    }
}

fn parse_profile(args: &[String]) -> Result<ProfileArgs, String> {
    let mut out = ProfileArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--workload" => out.workloads = parse_workloads(value)?,
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--faults" => {
                out.faults = value.parse().map_err(|e| format!("--faults: {e}"))?;
                if out.faults == 0 {
                    return Err("--faults must be positive".into());
                }
            }
            "--threads" => {
                out.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--scale" => out.scale = value.parse().map_err(|e| format!("--scale: {e}"))?,
            "--checkpoints" => {
                out.checkpoints = value.parse().map_err(|e| format!("--checkpoints: {e}"))?;
            }
            "--scheme" => {
                out.scheme = match value.as_str() {
                    "global" => Scheme::GlobalCoordinated,
                    "local" => Scheme::LocalCoordinated,
                    other => return Err(format!("unknown scheme `{other}`")),
                };
            }
            "--flame-out" => out.flame_out = value.clone(),
            "--ledger-out" => out.ledger_out = value.clone(),
            "--trace-out" => out.trace_out = Some(value.clone()),
            "--top" => out.top = value.parse().map_err(|e| format!("--top: {e}"))?,
            "--jobs" => out.jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?,
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 2;
    }
    Ok(out)
}

/// Sanitizes a region label for the collapsed-stack format (frames are
/// `;`-separated, samples end at the first space).
fn flame_frame(label: &str) -> String {
    label.replace([';', ' '], "_")
}

/// Renders the per-PC profile as collapsed stacks:
/// `workload;tN;region;class;pc_0x… ticks`, one line per attribution
/// site, in `(core, pc)` order — loadable in speedscope or inferno.
fn collapsed_stacks(
    workload: &str,
    program: &acr_isa::Program,
    prof: &acr_sim::PcProfile,
) -> String {
    let mut out = String::new();
    for ((core, pc), c) in prof.iter() {
        if c.ticks == 0 {
            continue;
        }
        let region = flame_frame(program.label_at(*core, *pc).unwrap_or("code"));
        let class = if c.mem_ticks > 0 { "mem" } else { "cpu" };
        let _ = writeln!(
            out,
            "{workload};t{core};{region};{class};pc_0x{pc:x} {}",
            c.ticks
        );
    }
    out
}

/// Renders the omission-decision ledger as a deterministic text report:
/// reason totals, the per-4-KiB-range split, per-Slice omission counts and
/// per-Slice replay cost (cycles plus pJ from the energy model).
fn ledger_report(
    workload: &str,
    seed: u64,
    ledger: &acr_ckpt::DecisionLedger,
    energy: &acr_energy::EnergyModel,
) -> String {
    let mut out = String::new();
    let total = ledger.total_decisions();
    let _ = writeln!(out, "# omission-decision ledger: {workload} seed {seed}");
    let _ = writeln!(
        out,
        "decisions {total}  logged {}  omitted {}",
        ledger.total_logged(),
        ledger.total_omitted()
    );
    for reason in OmitReason::ALL {
        let n = ledger.total(reason);
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * n as f64 / total as f64
        };
        let _ = writeln!(out, "  {:<24} {n:>10}  {pct:>5.1}%", reason.code());
    }
    let _ = writeln!(
        out,
        "# per 4 KiB range: base {}",
        OmitReason::ALL.map(OmitReason::code).join(" ")
    );
    for (base, counts) in ledger.ranges() {
        let _ = write!(out, "range {base:#012x}");
        for n in counts {
            let _ = write!(out, " {n}");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "# per-slice omissions");
    for (slice, n) in ledger.per_slice() {
        let _ = writeln!(out, "slice {} omitted {n}", slice.0);
    }
    let _ = writeln!(out, "# per-slice replay cost");
    for (slice, rc) in ledger.replays() {
        let pj = rc.alu_ops as f64 * energy.alu_pj + rc.opbuf_reads as f64 * energy.opbuf_pj;
        let _ = writeln!(
            out,
            "slice {} replays {} cycles {} alu {} opbuf {} energy_pj {pj:.1}",
            slice.0, rc.replays, rc.cycles, rc.alu_ops, rc.opbuf_reads
        );
    }
    out
}

fn profile(args: &[String]) -> Result<ExitCode, String> {
    let a = parse_profile(args)?;
    let multi = a.workloads.len() > 1;
    let items: Vec<FaultedSweepItem> = a
        .workloads
        .iter()
        .map(|&bench| FaultedSweepItem {
            name: bench.name().to_owned(),
            program: generate(
                bench,
                &WorkloadConfig::default()
                    .with_threads(a.threads)
                    .with_scale(a.scale),
            ),
        })
        .collect();
    let tracing = a.trace_out.is_some();
    let outcomes = run_faulted_sweep(
        &items,
        a.jobs,
        tracing.then_some(false),
        |item| {
            let bench = Benchmark::from_name(&item.name).expect("items are built from benchmarks");
            let spec = ExperimentSpec::default()
                .with_cores(a.threads)
                .with_checkpoints(a.checkpoints)
                .with_threshold(bench.default_threshold())
                .with_scheme(a.scheme)
                .with_profile(true);
            if tracing {
                spec.with_sample_interval(5000)
            } else {
                spec
            }
        },
        |_, total| planned_faults(a.seed, a.faults, total, a.threads),
    );

    let energy = acr_energy::EnergyModel::default();
    for o in outcomes {
        let name = o.name;
        let run = o.run.map_err(|e| format!("{name}: {e}"))?;
        let result = &run.result;
        let iprog = &run.instrumented;
        let prof = result.profile.as_ref().expect("profiling was enabled");
        let ledger = result.ledger.as_ref().expect("profiling was enabled");
        let (logged, omitted) = result.log_totals.expect("profiling was enabled");

        // Conservation: the ledger classified every first-update decision,
        // and its logged/omitted split matches the log controller's word
        // totals. A violation is an attribution bug, not a user error.
        assert_eq!(
            ledger.total_decisions(),
            logged + omitted,
            "ledger decisions must equal words logged + omitted"
        );
        assert_eq!(ledger.total_omitted(), omitted);

        let flame_out = if multi {
            suffixed(&a.flame_out, &name)
        } else {
            a.flame_out.clone()
        };
        let ledger_out = if multi {
            suffixed(&a.ledger_out, &name)
        } else {
            a.ledger_out.clone()
        };
        let flame = collapsed_stacks(&name, iprog, prof);
        std::fs::write(&flame_out, &flame).map_err(|e| format!("{flame_out}: {e}"))?;
        let ledger_txt = ledger_report(&name, a.seed, ledger, &energy);
        std::fs::write(&ledger_out, &ledger_txt).map_err(|e| format!("{ledger_out}: {e}"))?;

        println!(
            "profiled {} ({}): {} cycles, {} attribution sites, {} retires",
            name,
            result.label,
            result.cycles,
            prof.len(),
            prof.total_retires(),
        );
        let (p50, p90, p99) = prof.tick_histogram().digest();
        println!("  retire ticks p50 {p50} p90 {p90} p99 {p99}");
        println!(
            "  decisions {}: {} omitted, {} logged",
            ledger.total_decisions(),
            omitted,
            logged
        );

        // Hottest sites by attributed ticks (ties broken by site order).
        let mut sites: Vec<_> = prof.iter().collect();
        sites.sort_by(|a, b| b.1.ticks.cmp(&a.1.ticks).then(a.0.cmp(b.0)));
        println!(
            "  {:<5} {:<10} {:<16} {:>9} {:>9} {:>8} {:>8}",
            "core", "pc", "region", "retires", "ticks", "mem", "stall"
        );
        for ((core, pc), c) in sites.into_iter().take(a.top) {
            println!(
                "  {core:<5} {:<10} {:<16} {:>9} {:>9} {:>8} {:>8}",
                format!("0x{pc:x}"),
                iprog.label_at(*core, *pc).unwrap_or("code"),
                c.retires,
                c.ticks,
                c.mem_ticks,
                c.stall_ticks
            );
        }
        println!("  flamegraph -> {flame_out}");
        println!("  ledger -> {ledger_out}");

        if let Some(path) = &a.trace_out {
            let path = if multi {
                suffixed(path, &name)
            } else {
                path.clone()
            };
            let report = result.report.as_ref().expect("engine runs carry a report");
            let mut recorded = run.events.clone();
            // Ledger reason totals as one counter track per reason, stamped
            // at the end of the run, plus the retire-latency digest.
            for reason in OmitReason::ALL {
                recorded.push(
                    TraceEvent::counter(reason.code(), "ledger", TRACK_ENGINE, result.cycles)
                        .with_arg("words", ledger.total(reason)),
                );
            }
            recorded.push(
                TraceEvent::counter(
                    "profile.retire.ticks",
                    "profile",
                    TRACK_ENGINE,
                    result.cycles,
                )
                .with_arg("p50", p50)
                .with_arg("p90", p90)
                .with_arg("p99", p99),
            );
            let json = chrome_trace_json(&recorded, Some(&report.series));
            std::fs::write(&path, &json).map_err(|e| format!("{path}: {e}"))?;
            println!("  trace -> {path}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("inject") => match inject(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        },
        Some("trace") => match trace(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        },
        Some("profile") => match profile(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        },
        Some("workloads") => {
            for b in Benchmark::ALL {
                println!("{}", b.name());
            }
            ExitCode::SUCCESS
        }
        Some("help" | "-h" | "--help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n");
            print!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
